//! Discrete-event, packet-level simulation of greedy routing networks.
//!
//! This crate is the measurement instrument of the `meshbound` workspace: it
//! simulates the paper's standard model — Poisson arrivals at every node,
//! uniform destinations, greedy routing, FIFO edges with unit transmission
//! time and infinite buffers — as well as every variant the paper analyzes:
//!
//! * **Jackson mode** (exponential transmission times, §3.3) and
//!   **processor-sharing mode** (the Theorem 1/5 comparison system, [`ps`]);
//! * the **copy/"rushed" reference system** of Theorem 10 ([`copysys`]);
//! * **variable per-edge service rates** for the §5.1 capacity experiments;
//! * **slotted time** with batch Poisson arrivals (§5.2);
//! * alternative topologies (torus, hypercube, butterfly, `k`-d meshes) and
//!   routers (randomized greedy).
//!
//! The front door is the topology-generic [`Scenario`] in [`scenario`]: it
//! names the topology, router, workload ([`TrafficSpec`]: source model +
//! destination model — uniform, nearby, Bernoulli, the classic address
//! permutations, hotspots, explicit traffic matrices) and load in any
//! [`Load`] convention, runs single simulations ([`Scenario::run`]) or
//! Rayon-parallel replications ([`Scenario::run_replicated`]), and parses
//! compact command-line specs ([`Scenario::parse`]). Simulations are
//! deterministic given a seed; the conservative parallel engine in
//! [`shard`] runs one scenario across threads with per-`(seed, shards)`
//! determinism.
//!
//! # Quickstart
//!
//! ```
//! use meshbound_sim::{Load, Scenario};
//!
//! let result = Scenario::mesh(5)
//!     .load(Load::TableRho(0.2)) // λ = 4ρ/n = 0.16
//!     .run();
//! assert!(result.avg_delay > 3.0 && result.avg_delay < 4.5);
//!
//! // Any other topology through the same entry point:
//! let torus = Scenario::parse("torus:6,util=0.5,horizon=1000").unwrap().run();
//! assert!(torus.completed > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod copysys;
pub mod engine;
pub mod events;
pub mod fault;
pub mod network;
pub mod observer;
pub mod ps;
pub mod queue_sim;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod shard;
pub mod sweep;
pub mod telemetry;
pub mod traffic;

pub use engine::EngineSpec;
pub use fault::{DropCause, DropCounts, FaultPlan, FaultSpec};
pub use meshbound_queueing::load::Load;
pub use meshbound_routing::pattern::PermutationKind;
pub use network::{EdgeThroughputStats, NetworkSim, SimError, SimResult};
pub use runner::ReplicatedResult;
pub use scenario::{RouterSpec, Scenario, ScenarioError, TopologySpec};
pub use service::ServiceKind;
pub use sweep::{HorizonPolicy, SweepError, SweepSpec};
pub use telemetry::{
    set_progress_sink, ProbeSpec, ProgressFn, SeriesReport, TelemetryReport, TELEMETRY_SCHEMA,
};
pub use traffic::{PatternSpec, SourceSpec, TrafficSpec};
