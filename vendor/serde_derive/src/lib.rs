//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never serializes through a trait bound (there is no
//! `serde_json` consumer in-tree), so the derives can expand to nothing.
//! When the real `serde` becomes available, delete `vendor/` and point the
//! workspace dependency back at crates.io — no source change needed.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
