//! Replication aggregation for [`Scenario::run_replicated`](crate::scenario::Scenario::run_replicated).
//!
//! The topology-generic front door is [`crate::scenario::Scenario`]; this
//! module keeps the [`ReplicatedResult`] aggregate it returns. (The
//! original mesh-only entry points — `MeshSimConfig`, `simulate_mesh` —
//! lived here as deprecated wrappers until PR 7 removed them.)

use crate::network::SimResult;
use meshbound_stats::Summary;
use serde::{Deserialize, Serialize};

/// Aggregated replication statistics for an experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// Per-replication raw results.
    pub runs: Vec<SimResult>,
    /// Mean delay across replications.
    pub delay: Summary,
    /// Time-average `N` across replications.
    pub n: Summary,
    /// `r = E[R]/E[N]` across replications.
    pub r_ratio: Summary,
    /// `r_s = E[R_s]/E[N]` across replications.
    pub rs_ratio: Summary,
}

impl ReplicatedResult {
    /// Aggregates per-replication results (in replication order, so the
    /// summaries are independent of worker scheduling).
    #[must_use]
    pub fn from_runs(runs: Vec<SimResult>) -> Self {
        let mut delay = Summary::new();
        let mut n = Summary::new();
        let mut r_ratio = Summary::new();
        let mut rs_ratio = Summary::new();
        for r in &runs {
            delay.push(r.avg_delay);
            n.push(r.time_avg_n);
            r_ratio.push(r.r_ratio);
            rs_ratio.push(r.rs_ratio);
        }
        Self {
            runs,
            delay,
            n,
            r_ratio,
            rs_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{RouterSpec, Scenario};
    use crate::traffic::TrafficSpec;
    use meshbound_queueing::load::Load;

    fn base() -> Scenario {
        Scenario::mesh(4)
            .load(Load::Lambda(0.1))
            .horizon(3_000.0)
            .warmup(300.0)
            .track_saturated(true)
    }

    #[test]
    fn replications_have_distinct_seeds_and_tight_summary() {
        let rep = base().run_replicated(4);
        assert_eq!(rep.runs.len(), 4);
        // Distinct seeds → distinct results.
        assert!(rep
            .runs
            .windows(2)
            .any(|w| w[0].avg_delay != w[1].avg_delay));
        // The summary mean lies within the per-run envelope.
        let lo = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::INFINITY, f64::min);
        let hi = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(rep.delay.mean() >= lo && rep.delay.mean() <= hi);
    }

    #[test]
    fn randomized_router_runs() {
        let res = base()
            .load(Load::Lambda(0.15))
            .horizon(2_000.0)
            .warmup(200.0)
            .router(RouterSpec::Randomized)
            .run();
        assert!(res.avg_delay > 0.0);
        assert!(res.completed > 0);
    }

    #[test]
    fn nearby_dest_shortens_delay() {
        let base = Scenario::mesh(6)
            .load(Load::Lambda(0.1))
            .horizon(6_000.0)
            .warmup(500.0)
            .track_saturated(true);
        let uniform = base.clone().run();
        let nearby = base.traffic(TrafficSpec::nearby(0.5)).run();
        assert!(
            nearby.avg_delay < uniform.avg_delay,
            "nearby {} vs uniform {}",
            nearby.avg_delay,
            uniform.avg_delay
        );
    }
}
