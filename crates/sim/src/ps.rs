//! Processor-sharing network simulation (the Theorem 1/5 comparison
//! system).
//!
//! Under PS every packet queued at an edge receives an equal share of the
//! server. With equal service requirements (one unit of work each) and FIFO
//! arrival order, packets complete in arrival order, which permits an O(1)
//! *virtual-time* implementation: the server accumulates virtual service
//! `dv = dt / k(t)`, a packet arriving at virtual time `v` completes at
//! virtual time `v + 1`, and real completion instants are recovered by
//! inverting the accumulation. Theorem 1 (Stamoulis–Tsitsiklis) states that
//! this network's total population stochastically dominates the FIFO
//! network's; its equilibrium is product-form, equal to the Jackson model's
//! (§2.2, §3.3).

use crate::events::{EventQueue, HeapQueue};
use crate::network::NetConfig;
use crate::rng::{derive_rng, exp_sample};
use meshbound_routing::dest::DestSampler;
use meshbound_routing::Router;
use meshbound_topology::{EdgeId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Output of a PS-network run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PsResult {
    /// Mean delay of delivered packets generated post-warmup (self-packets
    /// included as zero).
    pub avg_delay: f64,
    /// Time-averaged number in system.
    pub time_avg_n: f64,
    /// Completed post-warmup packets.
    pub completed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival(u32),
    /// Head-of-edge completion with an epoch for lazy invalidation.
    Completion(u32, u32),
    Warmup,
}

#[derive(Debug, Clone, Copy)]
struct Packet<S> {
    dst: NodeId,
    state: S,
    gen_time: f64,
}

#[derive(Debug, Default)]
struct PsEdge {
    /// (packet id, virtual completion time), in arrival order.
    jobs: VecDeque<(u32, f64)>,
    /// Accumulated virtual service.
    vnow: f64,
    /// Real time of the last `vnow` update.
    last_update: f64,
    /// Bumped whenever the head's completion event must be rescheduled.
    epoch: u32,
}

impl PsEdge {
    /// Advances virtual time to real time `now`.
    fn advance(&mut self, now: f64) {
        let k = self.jobs.len();
        if k > 0 {
            self.vnow += (now - self.last_update) / k as f64;
        }
        self.last_update = now;
    }

    /// Real completion time of the current head (requires non-empty).
    fn head_completion(&self, now: f64) -> f64 {
        let (_, vc) = *self.jobs.front().expect("no head");
        now + (vc - self.vnow).max(0.0) * self.jobs.len() as f64
    }
}

/// Simulates the PS version of a network (unit work per edge crossing).
///
/// Only the total-population and delay statistics are tracked; this
/// simulator exists to verify Theorem 5 (`E[N_FIFO] ≤ E[N_PS]`) and the
/// product-form equilibrium of §2.2.
pub struct PsNetworkSim<T, R, D>
where
    T: Topology,
    R: Router<T>,
    D: DestSampler<T>,
{
    topo: T,
    router: R,
    dest: D,
    cfg: NetConfig,
}

impl<T, R, D> PsNetworkSim<T, R, D>
where
    T: Topology,
    R: Router<T>,
    D: DestSampler<T>,
{
    /// Creates the simulator; every node is a source.
    pub fn new(topo: T, router: R, dest: D, cfg: NetConfig) -> Self {
        assert!(
            cfg.slot.is_none(),
            "PS simulator does not implement slotted arrivals"
        );
        Self {
            topo,
            router,
            dest,
            cfg,
        }
    }

    /// Runs to the horizon.
    #[must_use]
    pub fn run(self) -> PsResult {
        let cfg = self.cfg.clone();
        let mut rng = derive_rng(cfg.seed, 1);
        let num_edges = self.topo.num_edges();
        let sources: Vec<NodeId> = self.topo.nodes().collect();
        let mut queue: HeapQueue<Ev> = HeapQueue::new();
        let mut edges: Vec<PsEdge> = (0..num_edges).map(|_| PsEdge::default()).collect();
        let mut packets: Vec<Packet<R::State>> = Vec::new();
        let mut free: Vec<u32> = Vec::new();
        let mut delays = meshbound_stats::Welford::new();
        let mut n_sys = meshbound_stats::TimeWeighted::new(0.0, 0.0);
        let mut completed = 0u64;

        for i in 0..sources.len() {
            queue.schedule(exp_sample(&mut rng, cfg.lambda), Ev::Arrival(i as u32));
        }
        if cfg.warmup > 0.0 {
            queue.schedule(cfg.warmup, Ev::Warmup);
        }

        let enqueue =
            |edges: &mut Vec<PsEdge>, queue: &mut HeapQueue<Ev>, e: usize, pid: u32, now: f64| {
                let edge = &mut edges[e];
                edge.advance(now);
                edge.jobs.push_back((pid, edge.vnow + 1.0));
                // Arrival slows the head: reschedule.
                edge.epoch = edge.epoch.wrapping_add(1);
                let t = edge.head_completion(now);
                queue.schedule(t, Ev::Completion(e as u32, edge.epoch));
            };

        while let Some((now, ev)) = queue.next() {
            if now > cfg.horizon {
                break;
            }
            match ev {
                Ev::Warmup => n_sys.reset(cfg.warmup),
                Ev::Arrival(i) => {
                    let src = sources[i as usize];
                    let dst = self.dest.sample(&self.topo, src, &mut rng);
                    if src == dst {
                        if cfg.include_self_packets && now >= cfg.warmup {
                            delays.push(0.0);
                            completed += 1;
                        }
                    } else {
                        let state = self.router.init_state(&self.topo, src, dst, &mut rng);
                        let pid = match free.pop() {
                            Some(id) => {
                                packets[id as usize] = Packet {
                                    dst,
                                    state,
                                    gen_time: now,
                                };
                                id
                            }
                            None => {
                                packets.push(Packet {
                                    dst,
                                    state,
                                    gen_time: now,
                                });
                                (packets.len() - 1) as u32
                            }
                        };
                        n_sys.add(now, 1.0);
                        let first = self
                            .router
                            .next_edge(&self.topo, src, dst, state)
                            .expect("first edge");
                        enqueue(&mut edges, &mut queue, first.index(), pid, now);
                    }
                    queue.schedule(now + exp_sample(&mut rng, cfg.lambda), Ev::Arrival(i));
                }
                Ev::Completion(e, epoch) => {
                    let ei = e as usize;
                    if edges[ei].epoch != epoch {
                        continue; // stale event
                    }
                    edges[ei].advance(now);
                    let (pid, _vc) = edges[ei]
                        .jobs
                        .pop_front()
                        .expect("completion on empty edge");
                    // Reschedule the new head (it speeds up).
                    edges[ei].epoch = edges[ei].epoch.wrapping_add(1);
                    if !edges[ei].jobs.is_empty() {
                        let t = edges[ei].head_completion(now);
                        queue.schedule(t, Ev::Completion(e, edges[ei].epoch));
                    }
                    let cur = self.topo.edge_target(EdgeId(e));
                    let pk = packets[pid as usize];
                    if cur == pk.dst {
                        n_sys.add(now, -1.0);
                        if pk.gen_time >= cfg.warmup {
                            delays.push(now - pk.gen_time);
                            completed += 1;
                        }
                        free.push(pid);
                    } else {
                        let next = self
                            .router
                            .next_edge(&self.topo, cur, pk.dst, pk.state)
                            .expect("router stalled");
                        enqueue(&mut edges, &mut queue, next.index(), pid, now);
                    }
                }
            }
        }

        let measure = (cfg.horizon - cfg.warmup).max(f64::MIN_POSITIVE);
        PsResult {
            avg_delay: delays.mean(),
            time_avg_n: n_sys.integral(cfg.horizon) / measure,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_routing::dest::UniformDest;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    #[test]
    fn ps_single_packet_crosses_in_unit_time_per_edge() {
        // With negligible load a packet is alone at each edge: PS equals
        // FIFO and the delay is the distance.
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.0005,
            horizon: 60_000.0,
            warmup: 0.0,
            seed: 21,
            ..NetConfig::default()
        };
        let res = PsNetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
        assert!(
            (res.avg_delay - mesh.mean_distance()).abs() < 0.2,
            "delay {}",
            res.avg_delay
        );
    }

    #[test]
    fn ps_matches_product_form() {
        // §2.2: the PS equilibrium is product-form with geometric queues:
        // E[N] = Σ_e λ_e/(1−λ_e).
        let n = 4;
        let mesh = Mesh2D::square(n);
        let lambda = 0.25; // Table-ρ 0.25·n/4 = 0.25 at n=4
        let cfg = NetConfig {
            lambda,
            horizon: 60_000.0,
            warmup: 2_000.0,
            seed: 22,
            ..NetConfig::default()
        };
        let res = PsNetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
        let rates = meshbound_routing::rates::mesh_thm6_rates(&mesh, lambda);
        let expect: f64 = rates.iter().map(|&l| l / (1.0 - l)).sum();
        let rel = (res.time_avg_n - expect).abs() / expect;
        assert!(
            rel < 0.06,
            "PS E[N] = {}, product form = {expect}",
            res.time_avg_n
        );
    }

    #[test]
    fn ps_dominates_fifo() {
        // Theorem 5: E[N_PS] ≥ E[N_FIFO] for the same parameters.
        use crate::network::NetworkSim;
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.3,
            horizon: 30_000.0,
            warmup: 2_000.0,
            seed: 23,
            ..NetConfig::default()
        };
        let fifo = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone()).run();
        let ps = PsNetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        assert!(
            ps.time_avg_n > fifo.time_avg_n,
            "PS {} vs FIFO {}",
            ps.time_avg_n,
            fifo.time_avg_n
        );
    }
}
