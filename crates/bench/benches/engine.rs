//! Simulator-engine ablations: event-queue implementations and raw
//! simulation throughput.
//!
//! Compares the binary-heap future-event list against the calendar queue on
//! a synthetic hold-model workload, and measures end-to-end events/sec of
//! the network simulator at several sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use meshbound::sim::events::{CalendarQueue, EventQueue, HeapQueue};
use meshbound::{Load, Scenario};

/// Classic hold-model: pop one event, push one event at t + U(0,2).
fn hold_model<Q: EventQueue<u32>>(queue: &mut Q, ops: usize) {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..256u32 {
        queue.schedule(rnd() * 2.0, i);
    }
    for _ in 0..ops {
        let (t, id) = queue.next().unwrap();
        queue.schedule(t + rnd() * 2.0, id);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold_model");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("binary_heap", |b| {
        b.iter_batched(
            HeapQueue::<u32>::new,
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("calendar_queue", |b| {
        b.iter_batched(
            || CalendarQueue::<u32>::new(64, 0.125),
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("network_sim_throughput");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_function(format!("mesh_n{n}_rho0.8"), |b| {
            b.iter(|| {
                Scenario::mesh(n)
                    .load(Load::TableRho(0.8))
                    .horizon(500.0)
                    .warmup(100.0)
                    .seed(13)
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
