//! Regenerates Figure 2 (saturated edges) and times the s̄ enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::fig2;

fn bench(c: &mut Criterion) {
    let (even, odd) = fig2::run(4, 5);
    println!("\n{}", fig2::render(&even, &odd));

    let mut group = c.benchmark_group("fig2");
    for n in [8usize, 9, 16, 17] {
        group.bench_function(format!("sbar_enumeration_n{n}"), |b| {
            b.iter(|| fig2::run_panel(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
