//! Destination distributions.
//!
//! The standard model draws destinations uniformly over all nodes
//! ([`UniformDest`]); §4.5 studies a hypercube distribution where each bit
//! of the destination differs with probability `p` ([`BernoulliDest`]); and
//! §5.2 sketches a non-uniform "nearby" distribution realized by a stopping
//! walk ([`NearbyWalk`]). [`ButterflyOutput`] draws a uniform output row for
//! butterfly inputs.
//!
//! Every sampler also exposes its probability mass function
//! ([`DestSampler::weight`]), which the exact rate computation in
//! [`crate::rates`] integrates over all source/destination pairs.

use meshbound_topology::{Butterfly, Hypercube, Mesh2D, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The sparse structure of a destination distribution at one source.
///
/// [`crate::rates::edge_rates_sparse`] uses this to replace the
/// all-destinations weight scan with a walk over the few destinations that
/// actually carry mass, turning permutation and hotspot rate vectors from
/// `O(N² · route)` into `O(N · route)`.
#[derive(Debug, Clone, PartialEq)]
pub enum DestSupport {
    /// No sparse structure known: enumerate every destination.
    Dense,
    /// The mass at this source decomposes as
    /// `weight(src, dst) = uniform / N + Σ_{(d, w) ∈ points, d = dst} w`:
    /// a few point masses plus a remainder spread uniformly over all `N`
    /// nodes.
    Sparse {
        /// Point masses `(destination, probability)`.
        points: Vec<(NodeId, f64)>,
        /// Total mass spread uniformly over all nodes (`0.0` for pure
        /// point-mass patterns such as permutations and matrix rows).
        uniform: f64,
    },
}

/// A destination distribution over a topology.
pub trait DestSampler<T: Topology> {
    /// Draws a destination for a packet generated at `src`.
    fn sample(&self, topo: &T, src: NodeId, rng: &mut SmallRng) -> NodeId;

    /// Probability that a packet generated at `src` is destined for `dst`.
    fn weight(&self, topo: &T, src: NodeId, dst: NodeId) -> f64;

    /// The sparse support of the distribution at `src`, when one is known.
    ///
    /// The default reports [`DestSupport::Dense`] — no structure — which
    /// keeps callers on the exact full-scan rate path. Samplers whose mass
    /// concentrates on a few destinations (permutations, hotspots, sparse
    /// matrix rows) override this so [`crate::rates::edge_rates_sparse`]
    /// can skip the scan without changing a single computed value.
    fn support(&self, topo: &T, src: NodeId) -> DestSupport {
        let _ = (topo, src);
        DestSupport::Dense
    }
}

/// Convenience enum naming the built-in destination distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DestDist {
    /// Uniform over all nodes (the paper's standard model).
    Uniform,
    /// §5.2 stopping-walk distribution with the given per-node stop
    /// probability (the paper's sketch uses 1/2).
    Nearby {
        /// Probability of stopping at each node (except forced boundary stops).
        stop: f64,
    },
}

/// Uniform destinations over all nodes, self-pairs included.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformDest;

impl<T: Topology> DestSampler<T> for UniformDest {
    #[inline]
    fn sample(&self, topo: &T, _: NodeId, rng: &mut SmallRng) -> NodeId {
        NodeId(rng.gen_range(0..topo.num_nodes() as u32))
    }

    #[inline]
    fn weight(&self, topo: &T, _: NodeId, _: NodeId) -> f64 {
        1.0 / topo.num_nodes() as f64
    }

    fn support(&self, _: &T, _: NodeId) -> DestSupport {
        DestSupport::Sparse {
            points: Vec::new(),
            uniform: 1.0,
        }
    }
}

/// Hypercube destinations where each address bit differs from the source
/// with probability `p`, independently (§4.5). `p = 1/2` recovers the
/// uniform distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliDest {
    /// Per-dimension flip probability.
    pub p: f64,
}

impl BernoulliDest {
    /// Creates the distribution; `p` must lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        Self { p }
    }
}

impl DestSampler<Hypercube> for BernoulliDest {
    fn sample(&self, topo: &Hypercube, src: NodeId, rng: &mut SmallRng) -> NodeId {
        let mut dst = src.0;
        for i in 0..topo.dim() {
            if rng.gen_bool(self.p) {
                dst ^= 1 << i;
            }
        }
        NodeId(dst)
    }

    fn weight(&self, topo: &Hypercube, src: NodeId, dst: NodeId) -> f64 {
        let k = (src.0 ^ dst.0).count_ones() as i32;
        let d = topo.dim() as i32;
        self.p.powi(k) * (1.0 - self.p).powi(d - k)
    }
}

/// Uniform output row for packets entering a butterfly at level 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ButterflyOutput;

impl DestSampler<Butterfly> for ButterflyOutput {
    fn sample(&self, topo: &Butterfly, _: NodeId, rng: &mut SmallRng) -> NodeId {
        let row = rng.gen_range(0..topo.rows());
        topo.node(topo.levels(), row)
    }

    fn weight(&self, topo: &Butterfly, _: NodeId, dst: NodeId) -> f64 {
        let (level, _) = topo.coords(dst);
        if level == topo.levels() {
            1.0 / topo.rows() as f64
        } else {
            0.0
        }
    }
}

/// The §5.2 "nearby" destination distribution on the array.
///
/// Per axis, the packet picks a direction uniformly at random and then walks:
/// at each node it stops with probability `stop`, and it must stop at the
/// array boundary. The induced destination distribution concentrates around
/// the source; the routing process remains Markovian, so the upper and lower
/// bound machinery still applies (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearbyWalk {
    /// Per-node stopping probability (the paper uses 1/2).
    pub stop: f64,
}

impl NearbyWalk {
    /// Creates the distribution; `stop` must lie in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `stop` is outside `(0, 1]`.
    #[must_use]
    pub fn new(stop: f64) -> Self {
        assert!(stop > 0.0 && stop <= 1.0, "stop must be in (0,1]");
        Self { stop }
    }

    /// Walks one axis: starting at `c` on a line of `n` nodes, returns the
    /// stopping coordinate.
    fn walk_axis(&self, n: usize, c: usize, rng: &mut SmallRng) -> usize {
        let go_right = rng.gen_bool(0.5);
        let mut pos = c;
        loop {
            let at_boundary = if go_right { pos + 1 >= n } else { pos == 0 };
            if at_boundary || rng.gen_bool(self.stop) {
                return pos;
            }
            pos = if go_right { pos + 1 } else { pos - 1 };
        }
    }

    /// Probability mass of stopping at `c2` when starting from `c1` on a
    /// line of `n` nodes.
    fn axis_weight(&self, n: usize, c1: usize, c2: usize) -> f64 {
        let q = 1.0 - self.stop;
        // Probability of reaching displacement k (same direction) and
        // stopping there, with forced stop at boundary distance b.
        let dir_mass = |k: usize, b: usize| -> f64 {
            if k > b {
                0.0
            } else if k == b {
                q.powi(k as i32) // reached the boundary: forced stop
            } else {
                q.powi(k as i32) * self.stop
            }
        };
        if c2 == c1 {
            0.5 * dir_mass(0, n - 1 - c1) + 0.5 * dir_mass(0, c1)
        } else if c2 > c1 {
            0.5 * dir_mass(c2 - c1, n - 1 - c1)
        } else {
            0.5 * dir_mass(c1 - c2, c1)
        }
    }
}

impl DestSampler<Mesh2D> for NearbyWalk {
    fn sample(&self, topo: &Mesh2D, src: NodeId, rng: &mut SmallRng) -> NodeId {
        let (r, c) = topo.coords(src);
        let c2 = self.walk_axis(topo.cols(), c, rng);
        let r2 = self.walk_axis(topo.rows(), r, rng);
        topo.node(r2, c2)
    }

    fn weight(&self, topo: &Mesh2D, src: NodeId, dst: NodeId) -> f64 {
        let (r1, c1) = topo.coords(src);
        let (r2, c2) = topo.coords(dst);
        self.axis_weight(topo.cols(), c1, c2) * self.axis_weight(topo.rows(), r1, r2)
    }
}

/// Uniform destinations realized by the **Lemma 3 Markov chain** rather
/// than by direct sampling: the destination column and row are each chosen
/// by running the stopping walk of Lemma 3 along the corresponding axis.
///
/// By Lemma 3 the induced distribution is exactly uniform, which is what
/// makes greedy routing Markovian (Corollary 4) — this sampler exists to
/// make that equivalence executable and testable. It is interchangeable
/// with [`UniformDest`] in every simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lemma3Dest;

impl DestSampler<Mesh2D> for Lemma3Dest {
    fn sample(&self, topo: &Mesh2D, src: NodeId, rng: &mut SmallRng) -> NodeId {
        use crate::lemma3::Lemma3Walk;
        let (r, c) = topo.coords(src);
        let col_walk = Lemma3Walk::new(topo.cols());
        let row_walk = Lemma3Walk::new(topo.rows());
        let c2 = col_walk.run(c + 1, rng) - 1;
        let r2 = row_walk.run(r + 1, rng) - 1;
        topo.node(r2, c2)
    }

    fn weight(&self, topo: &Mesh2D, _: NodeId, _: NodeId) -> f64 {
        // Lemma 3: each axis position is uniform, independently.
        1.0 / (topo.rows() * topo.cols()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_weight_sums_to_one() {
        let m = Mesh2D::square(4);
        let src = m.node(1, 2);
        let total: f64 = m.nodes().map(|d| UniformDest.weight(&m, src, d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_weight_sums_to_one() {
        let h = Hypercube::new(5);
        for p in [0.1, 0.5, 0.9] {
            let d = BernoulliDest::new(p);
            let src = NodeId(13);
            let total: f64 = h.nodes().map(|x| d.weight(&h, src, x)).sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn bernoulli_half_is_uniform() {
        let h = Hypercube::new(4);
        let d = BernoulliDest::new(0.5);
        for x in h.nodes() {
            assert!((d.weight(&h, NodeId(3), x) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nearby_weight_sums_to_one() {
        for n in [3usize, 5, 6] {
            let m = Mesh2D::square(n);
            let w = NearbyWalk::new(0.5);
            for src in [m.node(0, 0), m.node(n / 2, n / 2), m.node(n - 1, 1)] {
                let total: f64 = m.nodes().map(|d| w.weight(&m, src, d)).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n}, src={src}");
            }
        }
    }

    #[test]
    fn nearby_concentrates_near_source() {
        let m = Mesh2D::square(9);
        let w = NearbyWalk::new(0.5);
        let src = m.node(4, 4);
        let at_src = w.weight(&m, src, src);
        let far = w.weight(&m, src, m.node(0, 0));
        assert!(at_src > far * 10.0);
    }

    #[test]
    fn nearby_sampling_matches_weights() {
        let m = Mesh2D::square(5);
        let w = NearbyWalk::new(0.5);
        let src = m.node(2, 1);
        let mut rng = rng();
        let trials = 200_000;
        let mut counts = vec![0u32; m.num_nodes()];
        for _ in 0..trials {
            counts[w.sample(&m, src, &mut rng).index()] += 1;
        }
        for d in m.nodes() {
            let expect = w.weight(&m, src, d);
            let got = f64::from(counts[d.index()]) / trials as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "dst {d}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn butterfly_output_always_level_d() {
        let b = Butterfly::new(3);
        let mut rng = rng();
        for _ in 0..100 {
            let d = ButterflyOutput.sample(&b, b.node(0, 0), &mut rng);
            assert_eq!(b.coords(d).0, 3);
        }
        let total: f64 = b
            .nodes()
            .map(|x| ButterflyOutput.weight(&b, b.node(0, 0), x))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma3_dest_is_uniform_on_the_mesh() {
        // The executable form of Corollary 4: the stopping-walk destination
        // matches the uniform distribution on every cell of the mesh.
        let m = Mesh2D::square(4);
        let src = m.node(1, 2);
        let mut rng = rng();
        let trials = 160_000;
        let mut counts = vec![0u32; m.num_nodes()];
        for _ in 0..trials {
            counts[Lemma3Dest.sample(&m, src, &mut rng).index()] += 1;
        }
        let expect = trials as f64 / 16.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (f64::from(c) - expect).abs() / expect;
            assert!(rel < 0.05, "cell {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn lemma3_dest_weight_is_uniform() {
        let m = Mesh2D::square(5);
        let total: f64 = m
            .nodes()
            .map(|d| Lemma3Dest.weight(&m, m.node(0, 0), d))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let m = Mesh2D::square(3);
        let mut rng = rng();
        let mut counts = vec![0u32; 9];
        for _ in 0..90_000 {
            counts[UniformDest.sample(&m, m.node(0, 0), &mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) / 10_000.0 - 1.0).abs() < 0.05);
        }
    }
}
