//! West-first minimal-adaptive routing on the 2-D grid.
//!
//! The west-first turn model (Glass & Ni) forbids the two turns *into*
//! West: a packet whose destination lies to the west must cross **all** of
//! its westward edges first, before any other move; once it is done going
//! west (or never needed to) it routes minimal-adaptively among the
//! remaining productive directions (East, Down, Up). Every route is
//! minimal, and on the mesh the turn restriction makes the channel
//! dependency graph acyclic, so the discipline is deadlock-free even with
//! finite buffers. (This simulator's output queues are unbounded, so
//! deadlock cannot occur in-sim regardless; the restriction is what makes
//! the discipline meaningful as hardware.)
//!
//! On the torus the same rule is applied in the shortest-wrap displacement
//! frame, recomputed at every hop. That keeps routes minimal and
//! live, but wraparound rings reintroduce cyclic channel dependencies, so
//! the torus variant is a congestion-avoidance heuristic rather than a
//! finite-buffer deadlock-freedom proof.

use crate::grid::{vertical_toward, HopSet, TurnGrid};
use crate::policy::{LocalView, SplitRouting};
use crate::router::Router;
use meshbound_topology::{Direction, EdgeId, Mesh2D, NodeId, Torus2D};
use rand::rngs::SmallRng;

/// West-first minimal-adaptive routing (Glass–Ni turn model).
///
/// Adaptivity: at each hop the packet takes the permitted productive
/// out-edge with the shortest local queue ([`LocalView`]); ties and the
/// empty-network canonical route prefer East over vertical movement.
///
/// # Examples
///
/// ```
/// use meshbound_topology::{Mesh2D, Topology};
/// use meshbound_routing::{Router, WestFirst, ZeroView};
/// let mesh = Mesh2D::square(4);
/// // Westward destination: the first hops are forced west.
/// let route = WestFirst.route(&mesh, mesh.node(0, 3), mesh.node(2, 0), ());
/// assert_eq!(route.len(), 5);
/// assert_eq!(mesh.direction(route[0]), meshbound_topology::Direction::Left);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WestFirst;

impl WestFirst {
    /// The permitted productive hops at `cur`: `[Left]` alone while any
    /// westward displacement remains, otherwise East and/or the vertical
    /// move toward the destination.
    pub(crate) fn candidates<G: TurnGrid>(topo: &G, cur: NodeId, dst: NodeId) -> HopSet {
        let (dr, dc) = topo.deltas(cur, dst);
        let mut out = HopSet::default();
        if dc < 0 {
            // No turn into West exists, so all westward correction comes
            // first — and while it lasts the packet has no choice.
            out.push_dir(topo, cur, Direction::Left);
            return out;
        }
        if dc > 0 {
            out.push_dir(topo, cur, Direction::Right);
        }
        if dr != 0 {
            out.push_dir(topo, cur, vertical_toward(dr));
        }
        out
    }
}

macro_rules! impl_west_first {
    ($topo:ty) => {
        impl Router<$topo> for WestFirst {
            type State = ();

            #[inline]
            fn init_state(&self, _: &$topo, _: NodeId, _: NodeId, _: &mut SmallRng) {}

            #[inline]
            fn next_edge(&self, topo: &$topo, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
                Self::candidates(topo, cur, dst).first()
            }

            #[inline]
            fn next_hop(
                &self,
                topo: &$topo,
                here: NodeId,
                dst: NodeId,
                _: (),
                local: &dyn LocalView,
            ) -> Option<EdgeId> {
                Self::candidates(topo, here, dst).least_occupied(local)
            }

            #[inline]
            fn remaining_hops(&self, topo: &$topo, cur: NodeId, dst: NodeId, _: ()) -> usize {
                topo.hop_distance(cur, dst)
            }
        }

        impl SplitRouting<$topo> for WestFirst {
            fn splits(
                &self,
                topo: &$topo,
                _prev: Option<EdgeId>,
                here: NodeId,
                dst: NodeId,
            ) -> Vec<(EdgeId, f64)> {
                Self::candidates(topo, here, dst).equal_splits()
            }
        }
    };
}

impl_west_first!(Mesh2D);
impl_west_first!(Torus2D);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ZeroView;
    use meshbound_topology::Topology;

    struct QueueMap(Vec<u32>);

    impl LocalView for QueueMap {
        fn queue_len(&self, e: EdgeId) -> u32 {
            self.0[e.index()]
        }
    }

    #[test]
    fn west_phase_is_forced_and_first() {
        let m = Mesh2D::square(5);
        let route = WestFirst.route(&m, m.node(1, 4), m.node(3, 1), ());
        assert_eq!(route.len(), 5);
        // Once a non-West hop is taken, West never reappears.
        let mut seen_other = false;
        for &e in &route {
            let west = m.direction(e) == Direction::Left;
            if west {
                assert!(!seen_other, "west hop after a non-west hop");
            } else {
                seen_other = true;
            }
        }
    }

    #[test]
    fn routes_are_minimal_on_mesh_and_torus() {
        let m = Mesh2D::square(4);
        for a in m.nodes() {
            for b in m.nodes() {
                assert_eq!(WestFirst.route(&m, a, b, ()).len(), m.manhattan(a, b));
            }
        }
        let t = Torus2D::new(5);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(WestFirst.route(&t, a, b, ()).len(), t.distance(a, b));
            }
        }
    }

    #[test]
    fn adaptive_pick_avoids_the_longer_queue() {
        let m = Mesh2D::square(4);
        let cur = m.node(1, 1);
        let dst = m.node(3, 3);
        let east = WestFirst.next_edge(&m, cur, dst, ()).unwrap();
        assert_eq!(m.direction(east), Direction::Right);
        // Pile packets on the canonical (East) edge: the adaptive hook
        // must divert to the vertical candidate.
        let mut queues = vec![0u32; m.num_edges()];
        queues[east.index()] = 7;
        let picked = WestFirst
            .next_hop(&m, cur, dst, (), &QueueMap(queues))
            .unwrap();
        assert_eq!(m.direction(picked), Direction::Down);
        // An empty view reproduces the canonical choice.
        assert_eq!(WestFirst.next_hop(&m, cur, dst, (), &ZeroView), Some(east));
    }

    #[test]
    fn splits_are_equal_over_candidates() {
        let m = Mesh2D::square(4);
        let s = WestFirst.splits(&m, None, m.node(0, 0), m.node(2, 2));
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|&(_, p)| (p - 0.5).abs() < 1e-15));
        let west = WestFirst.splits(&m, None, m.node(0, 3), m.node(2, 0));
        assert_eq!(west.len(), 1);
        assert_eq!(m.direction(west[0].0), Direction::Left);
    }
}
