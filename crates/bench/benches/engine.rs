//! Simulator-engine ablations: event-queue implementations, raw simulation
//! throughput, and the engine comparison that feeds `BENCH_engine.json`.
//!
//! Running this bench always measures events/sec for every [`EngineSpec`]
//! on the Table-I mesh workload (ρ = 0.8) and on table-free hypercube
//! shuffles (ρ = 0.5, up to 2¹⁶ nodes), asserts the engines agree bit
//! for bit, and writes a schema-versioned JSON report to
//! `$ENGINE_BENCH_OUT` (default `BENCH_engine.json`) — the first point of
//! the perf trajectory CI archives. Pass `-- --smoke` for the reduced CI
//! variant that skips the criterion timing groups.

use criterion::{BatchSize, Criterion, Throughput};
use meshbound::sim::events::{CalendarQueue, EventQueue, HeapQueue};
use meshbound::{EngineSpec, Load, RouterSpec, Scenario, TrafficSpec};
use serde::Serialize;

/// Schema identifier of the JSON report; bump on layout changes.
/// v2: rows gained a `topo`/`nodes` axis and the table-free hypercube
/// shuffle workloads joined the mesh sweep.
/// v3: rows gained a `cores` axis and the sharded parallel engine joined
/// the comparison (`sharded:1`, `sharded:4`), with a sharded headline.
/// v4: the report gained a `router_comparison` block measuring greedy vs
/// odd-even adaptive events/sec on the mesh transpose workload.
const SCHEMA: &str = "meshbound.engine-bench/v4";

#[derive(Serialize)]
struct EngineBenchReport {
    schema: String,
    /// Human description of the measured workload.
    workload: String,
    /// Threads the measuring host offered
    /// (`std::thread::available_parallelism`) — the context for the
    /// sharded rows: `sharded:4` can only beat `sharded:1` when
    /// `host_cores > 1`.
    host_cores: usize,
    /// One row per (workload size, engine).
    rows: Vec<Row>,
    /// Headline number: `Auto` vs `Heap` events/sec at the largest size.
    speedup_auto_vs_heap: f64,
    /// Parallel headline: `sharded:4` vs `sharded:1` events/sec at the
    /// largest size. Only meaningful on a multi-core host — a 1-core
    /// runner reports ~1.0 or below (barrier overhead, no parallelism).
    speedup_sharded4_vs_sharded1: f64,
    /// Routing-layer overhead probe: the per-hop adaptive path (odd-even,
    /// queue-aware `next_hop` at every dequeue) against the oblivious
    /// route-table path (greedy) on the same workload.
    router_comparison: RouterComparison,
}

/// Greedy vs odd-even simulator throughput on one transpose workload —
/// the cost of per-hop adaptive decisions relative to table lookups.
#[derive(Serialize)]
struct RouterComparison {
    /// Human description of the measured workload.
    workload: String,
    greedy_events_per_sec: f64,
    oddeven_events_per_sec: f64,
}

#[derive(Serialize, Clone)]
struct Row {
    engine: String,
    /// Worker threads the engine runs on: 1 for the single-core engines,
    /// the shard count for `sharded:<N>`.
    cores: usize,
    /// Topology family: `"mesh"` (Table-I uniform) or `"hypercube"`
    /// (shuffle permutation, table-free above the route-table gate).
    topo: String,
    /// Size parameter: mesh side or hypercube dimension.
    n: usize,
    /// Total node count — the scaling axis (`n²` or `2^n`).
    nodes: usize,
    rho: f64,
    horizon: f64,
    /// Deterministic event count (identical across engines by contract).
    events_processed: u64,
    /// Best-of-reps simulator throughput.
    events_per_sec: f64,
    /// This row's events/sec over the heap row's at the same size.
    speedup_vs_heap: f64,
}

/// One measured point on the (topology, nodes) grid.
struct Workload {
    topo: &'static str,
    n: usize,
    nodes: usize,
    rho: f64,
    horizon: f64,
}

impl Workload {
    fn mesh(n: usize, horizon: f64) -> Self {
        Workload {
            topo: "mesh",
            n,
            nodes: n * n,
            rho: 0.8,
            horizon,
        }
    }

    /// Hypercube shuffle above the route-table gate: exercises the
    /// table-free routing path the million-node scenarios rely on.
    fn cube_shuffle(dim: usize, horizon: f64) -> Self {
        Workload {
            topo: "hypercube",
            n: dim,
            nodes: 1 << dim,
            rho: 0.5,
            horizon,
        }
    }

    fn scenario(&self, engine: EngineSpec) -> Scenario {
        let base = match self.topo {
            "mesh" => Scenario::mesh(self.n).load(Load::TableRho(self.rho)),
            "hypercube" => Scenario::hypercube(self.n)
                .traffic(TrafficSpec::shuffle())
                .load(Load::Utilization(self.rho)),
            other => unreachable!("unknown workload topology {other}"),
        };
        base.horizon(self.horizon)
            .warmup(self.horizon / 5.0)
            .seed(13)
            .engine(engine)
    }
}

/// Measures greedy vs odd-even events/sec on the mesh:16 transpose
/// workload at ρ = 0.8 — the acceptance workload where odd-even's extra
/// path diversity pays off. Best of `reps` interleaved rounds, like the
/// engine grid.
fn router_comparison(smoke: bool) -> RouterComparison {
    let horizon = if smoke { 200.0 } else { 1_000.0 };
    let reps = if smoke { 3 } else { 5 };
    let scenario = |router: RouterSpec| {
        Scenario::mesh(16)
            .traffic(TrafficSpec::transpose())
            .load(Load::Utilization(0.8))
            .horizon(horizon)
            .warmup(horizon / 5.0)
            .seed(13)
            .router(router)
    };
    let mut best = [0.0f64; 2];
    for _ in 0..reps {
        for (slot, router) in [RouterSpec::Greedy, RouterSpec::OddEven]
            .into_iter()
            .enumerate()
        {
            let res = scenario(router).run();
            best[slot] = best[slot].max(res.events_per_sec);
        }
    }
    RouterComparison {
        workload: format!("mesh:16 transpose (util rho=0.8), horizon {horizon}, seed 13"),
        greedy_events_per_sec: best[0],
        oddeven_events_per_sec: best[1],
    }
}

/// The cross-engine comparison: measures all engines at several sizes,
/// asserts bit-identity, and assembles the JSON report.
///
/// Reps are *interleaved* — every round measures each engine once — so
/// machine-noise phases (a busy neighbor, a thermal dip) hit all engines
/// alike instead of biasing whichever ran during the bad stretch; the
/// best round per engine is reported.
fn engine_comparison(smoke: bool) -> EngineBenchReport {
    // Horizons track real workloads (the Scenario default is 2000, or 50
    // above 4096 nodes): engine setup is one-time, so unrealistically
    // short runs would under-credit (or over-credit) whichever engine
    // amortizes differently.
    let sizes: Vec<Workload> = if smoke {
        vec![
            Workload::mesh(5, 200.0),
            Workload::mesh(10, 400.0),
            Workload::cube_shuffle(10, 100.0),
            Workload::cube_shuffle(14, 20.0),
        ]
    } else {
        vec![
            Workload::mesh(5, 500.0),
            Workload::mesh(10, 1_000.0),
            Workload::mesh(20, 1_000.0),
            Workload::cube_shuffle(10, 200.0),
            Workload::cube_shuffle(14, 50.0),
            Workload::cube_shuffle(16, 50.0),
        ]
    };
    // Slots 0..=3 (heap, calendar, auto, sharded:1) must agree bit for
    // bit; sharded:4 replicates the per-shard ticks and adds handoff
    // events, so its fingerprint is only required to be *rep-stable*.
    let engines = [
        EngineSpec::Heap,
        EngineSpec::Calendar,
        EngineSpec::Auto,
        EngineSpec::Sharded { shards: 1 },
        EngineSpec::Sharded { shards: 4 },
    ];
    const BIT_IDENTICAL_SLOTS: usize = 4;
    let reps = if smoke { 3 } else { 5 };
    let mut rows = Vec::new();
    let mut headline = 0.0;
    let mut sharded_headline = 0.0;
    for w in &sizes {
        let mut best = [0.0f64; 5];
        let mut fingerprint: [Option<(u64, u64)>; 5] = [None; 5];
        for _ in 0..reps {
            for (slot, &engine) in engines.iter().enumerate() {
                let res = w.scenario(engine).run();
                best[slot] = best[slot].max(res.events_per_sec);
                let fp = (res.events_processed, res.avg_delay.to_bits());
                match fingerprint[slot] {
                    None => fingerprint[slot] = Some(fp),
                    Some(prev) => assert_eq!(
                        prev, fp,
                        "engine {engine} is not deterministic across reps on {} n={}",
                        w.topo, w.n
                    ),
                }
            }
        }
        for slot in 1..BIT_IDENTICAL_SLOTS {
            assert_eq!(
                fingerprint[slot], fingerprint[0],
                "engine {} diverged from heap on {} n={}",
                engines[slot], w.topo, w.n
            );
        }
        let heap_eps = best[0];
        for (slot, &engine) in engines.iter().enumerate() {
            let speedup = best[slot] / heap_eps;
            if engine == EngineSpec::Auto {
                headline = speedup; // last size wins: the headline scale
            }
            let cores = match engine {
                EngineSpec::Sharded { shards } => shards,
                _ => 1,
            };
            rows.push(Row {
                engine: engine.to_string(),
                cores,
                topo: w.topo.to_string(),
                n: w.n,
                nodes: w.nodes,
                rho: w.rho,
                horizon: w.horizon,
                events_processed: fingerprint[slot].expect("measured above").0,
                events_per_sec: best[slot],
                speedup_vs_heap: speedup,
            });
        }
        sharded_headline = best[4] / best[3]; // last size wins here too
    }
    EngineBenchReport {
        schema: SCHEMA.to_string(),
        workload: "Table-I square mesh (rho=0.8) and hypercube shuffle (rho=0.5), seed 13"
            .to_string(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
        speedup_auto_vs_heap: headline,
        speedup_sharded4_vs_sharded1: sharded_headline,
        router_comparison: router_comparison(smoke),
    }
}

/// Classic hold-model: pop one event, push one event at t + U(0,2).
fn hold_model<Q: EventQueue<u32>>(queue: &mut Q, ops: usize) {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..256u32 {
        queue.schedule(rnd() * 2.0, i);
    }
    for _ in 0..ops {
        let (t, id) = queue.next().unwrap();
        queue.schedule(t + rnd() * 2.0, id);
    }
}

fn criterion_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold_model");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("binary_heap", |b| {
        b.iter_batched(
            HeapQueue::<u32>::new,
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("calendar_queue", |b| {
        b.iter_batched(
            || CalendarQueue::<u32>::new(64, 0.125),
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("network_sim_throughput");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        for engine in EngineSpec::ALL {
            group.bench_function(format!("mesh_n{n}_rho0.8_{engine}"), |b| {
                b.iter(|| {
                    Scenario::mesh(n)
                        .load(Load::TableRho(0.8))
                        .horizon(500.0)
                        .warmup(100.0)
                        .seed(13)
                        .engine(engine)
                        .run()
                });
            });
        }
    }
    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = engine_comparison(smoke);
    println!("engine comparison ({}):", report.workload);
    for row in &report.rows {
        println!(
            "  {:<9} n={:<3} ({:>6} nodes) {:<9} cores={} {:>10.0} events/s  \
             ({:.2}x vs heap, {} events)",
            row.topo,
            row.n,
            row.nodes,
            row.engine,
            row.cores,
            row.events_per_sec,
            row.speedup_vs_heap,
            row.events_processed
        );
    }
    println!(
        "headline: auto vs heap {:.2}x, sharded:4 vs sharded:1 {:.2}x at the largest size",
        report.speedup_auto_vs_heap, report.speedup_sharded4_vs_sharded1
    );
    println!(
        "routers ({}): greedy {:.0} events/s, oddeven {:.0} events/s",
        report.router_comparison.workload,
        report.router_comparison.greedy_events_per_sec,
        report.router_comparison.oddeven_events_per_sec
    );
    let out = std::env::var("ENGINE_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    match std::fs::write(&out, serde::json::to_string_pretty(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            // The report is this binary's entire point in CI: fail loudly
            // rather than letting the smoke step pass without its artifact.
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke {
        let mut c = Criterion::default();
        criterion_groups(&mut c);
    }
}
