//! Time-weighted averages of piecewise-constant signals.
//!
//! Discrete-event simulators observe quantities like "number of packets in the
//! system" that change only at event instants. The time average of such a
//! signal is the integral of the piecewise-constant path divided by elapsed
//! time; [`TimeWeighted`] maintains that integral incrementally.

use serde::{Deserialize, Serialize};

/// Integrator for a piecewise-constant, real-valued signal.
///
/// Call [`TimeWeighted::set`] (or [`TimeWeighted::add`]) whenever the signal
/// changes; the integral of the previous value over the elapsed interval is
/// accumulated automatically.
///
/// # Examples
///
/// ```
/// use meshbound_stats::TimeWeighted;
/// let mut tw = TimeWeighted::new(0.0, 0.0);
/// tw.set(1.0, 2.0);  // value 2 from t=1
/// tw.set(3.0, 0.0);  // back to 0 at t=3
/// assert_eq!(tw.time_average(3.0), (0.0 * 1.0 + 2.0 * 2.0) / 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_time: f64,
    integral: f64,
    start_time: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an integrator whose signal has `value` from time `start`.
    #[must_use]
    pub fn new(start: f64, value: f64) -> Self {
        Self {
            value,
            last_time: start,
            integral: 0.0,
            start_time: start,
            peak: value,
        }
    }

    /// Advances the clock to `now`, accumulating the current value, without
    /// changing the signal.
    #[inline]
    pub fn advance(&mut self, now: f64) {
        debug_assert!(now >= self.last_time, "time must be monotone");
        self.integral += self.value * (now - self.last_time);
        self.last_time = now;
    }

    /// Sets the signal to `value` at time `now`.
    #[inline]
    pub fn set(&mut self, now: f64, value: f64) {
        self.advance(now);
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds `delta` to the signal at time `now`.
    #[inline]
    pub fn add(&mut self, now: f64, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current signal value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Largest value the signal has taken.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the signal from the start time through `now`.
    #[must_use]
    pub fn integral(&self, now: f64) -> f64 {
        self.integral + self.value * (now - self.last_time)
    }

    /// Time average of the signal over `[start, now]`; 0 over an empty window.
    #[must_use]
    pub fn time_average(&self, now: f64) -> f64 {
        let span = now - self.start_time;
        if span <= 0.0 {
            0.0
        } else {
            self.integral(now) / span
        }
    }

    /// Restarts integration at `now`, keeping the current signal value.
    ///
    /// Used to discard a simulation warmup period: statistics gathered before
    /// `now` are dropped while the in-flight state is preserved.
    pub fn reset(&mut self, now: f64) {
        self.integral = 0.0;
        self.last_time = now;
        self.start_time = now;
        self.peak = self.value;
    }

    /// Merges another integrator into this one at time `now`, for exact
    /// parallel combination of a signal that was tracked in disjoint parts
    /// (e.g. one integrator per shard of a sharded simulation).
    ///
    /// Both integrals are closed at `now` and summed — the integral of a
    /// sum of signals is the sum of the integrals — and the current values
    /// add, so [`TimeWeighted::time_average`] of the merge equals the
    /// time average a single integrator over the combined signal would
    /// report. The merged start time is the earlier of the two. The peak
    /// becomes the **sum** of the component peaks: component maxima at
    /// different instants only bound the combined signal's true peak, so
    /// the sum is an upper bound, exact when the parts peak together.
    pub fn merge(&mut self, other: &Self, now: f64) {
        self.advance(now);
        self.integral += other.integral(now);
        self.value += other.value;
        self.peak += other.peak;
        self.start_time = self.start_time.min(other.start_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signal_average_is_value() {
        let mut tw = TimeWeighted::new(0.0, 5.0);
        tw.advance(10.0);
        assert!((tw.time_average(10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(2.0, 3.0);
        tw.set(5.0, 1.0);
        // 0*2 + 3*3 + 1*5 over [0,10]
        assert!((tw.time_average(10.0) - (9.0 + 5.0) / 10.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 3.0);
    }

    #[test]
    fn add_tracks_deltas() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.add(1.0, 1.0);
        tw.add(2.0, 1.0);
        tw.add(3.0, -2.0);
        assert_eq!(tw.value(), 0.0);
        // integral: 0*1 + 1*1 + 2*1 = 3
        assert!((tw.integral(3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_discards_history() {
        let mut tw = TimeWeighted::new(0.0, 10.0);
        tw.advance(5.0);
        tw.reset(5.0);
        assert_eq!(tw.integral(5.0), 0.0);
        tw.advance(7.0);
        assert!((tw.time_average(7.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let tw = TimeWeighted::new(3.0, 7.0);
        assert_eq!(tw.time_average(3.0), 0.0);
    }

    #[test]
    fn merge_combines_disjoint_parts() {
        // Two shards each tracking part of one signal: the merged time
        // average equals a single integrator over the summed signal.
        let mut a = TimeWeighted::new(0.0, 1.0);
        let mut b = TimeWeighted::new(0.0, 2.0);
        let mut whole = TimeWeighted::new(0.0, 3.0);
        a.set(2.0, 4.0);
        whole.set(2.0, 6.0);
        b.set(5.0, 0.0);
        whole.set(5.0, 4.0);
        a.merge(&b, 8.0);
        assert!((a.time_average(8.0) - whole.time_average(8.0)).abs() < 1e-12);
        assert_eq!(a.value(), whole.value());
    }

    proptest! {
        #[test]
        fn prop_average_bounded_by_extremes(
            steps in proptest::collection::vec((0.001f64..10.0, -100.0f64..100.0), 1..50),
        ) {
            let mut tw = TimeWeighted::new(0.0, 0.0);
            let mut t = 0.0;
            let mut lo: f64 = 0.0;
            let mut hi: f64 = 0.0;
            for &(dt, v) in &steps {
                t += dt;
                tw.set(t, v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let end = t + 1.0;
            let avg = tw.time_average(end);
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
            prop_assert!(tw.peak() >= hi);
        }

        #[test]
        fn prop_merge_of_splits_matches_single_pass(
            steps in proptest::collection::vec(
                (0.001f64..10.0, -100.0f64..100.0, any::<bool>()),
                1..60,
            ),
        ) {
            // Route each step to one of two part-integrators; a third
            // integrator sees the combined signal. Merging the parts must
            // reproduce the single-pass integral and average to 1e-12.
            let mut left = TimeWeighted::new(0.0, 0.0);
            let mut right = TimeWeighted::new(0.0, 0.0);
            let mut whole = TimeWeighted::new(0.0, 0.0);
            let mut t = 0.0;
            for &(dt, v, goes_left) in &steps {
                t += dt;
                if goes_left {
                    let delta = v - left.value();
                    left.set(t, v);
                    whole.add(t, delta);
                } else {
                    let delta = v - right.value();
                    right.set(t, v);
                    whole.add(t, delta);
                }
            }
            let end = t + 1.0;
            left.merge(&right, end);
            let scale = 1.0 + whole.integral(end).abs();
            prop_assert!((left.integral(end) - whole.integral(end)).abs() < 1e-12 * scale);
            prop_assert!((left.time_average(end) - whole.time_average(end)).abs() < 1e-12 * scale);
            prop_assert!((left.value() - whole.value()).abs() < 1e-9);
        }
    }
}
