//! Experiments beyond the three tables: bounds curves, stability, capacity
//! allocation (§5.1), hypercube/butterfly gaps (§4.5), randomized greedy
//! and the torus (§6), slotted time and non-uniform destinations (§5.2),
//! and the Jackson-dominance check (§3.3).

use super::{Scale, TextTable};
use crate::report::BoundsReport;
use meshbound_queueing::bounds::{butterfly as bfb, hypercube as hcb};
use meshbound_queueing::capacity::{mesh_unit_budget, optimal_allocation, optimal_delay};
use meshbound_queueing::jackson;
use meshbound_queueing::little::mesh_total_arrival;
use meshbound_queueing::load::{mesh_stability_threshold, optimal_stability_threshold, Load};
use meshbound_routing::rates::mesh_thm6_rates;
use meshbound_sim::{RouterSpec, Scenario, ServiceKind, TrafficSpec};
use meshbound_topology::Mesh2D;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Bounds curve: simulation bracketed by analytic bounds across loads.
// ---------------------------------------------------------------------

/// One load point of the bounds-vs-simulation curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundsCurveRow {
    /// Table-ρ.
    pub rho: f64,
    /// Simulated delay.
    pub t_sim: f64,
    /// Full analytic report at this load.
    pub report: BoundsReport,
}

/// Simulated delay against every analytic bound for `n` across `rhos`.
#[must_use]
pub fn bounds_curve(n: usize, rhos: &[f64], scale: &Scale) -> Vec<BoundsCurveRow> {
    rhos.par_iter()
        .map(|&rho| {
            let sc = Scenario::mesh(n)
                .load(Load::TableRho(rho))
                .horizon(scale.horizon(rho))
                .warmup(scale.warmup(rho))
                .seed(scale.seed ^ 0xC0DE ^ ((rho * 1e4) as u64));
            BoundsCurveRow {
                rho,
                t_sim: sc.run().avg_delay,
                report: BoundsReport::compute_for(&sc),
            }
        })
        .collect()
}

/// Renders the bounds curve.
#[must_use]
pub fn render_bounds_curve(n: usize, rows: &[BoundsCurveRow]) -> String {
    let mut t = TextTable::new(&["rho", "lower(best)", "T(sim)", "est(paper)", "upper", "gap"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.rho),
            format!("{:.3}", r.report.lower_best),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.report.est_paper),
            format!("{:.3}", r.report.upper),
            format!("{:.2}", r.report.gap()),
        ]);
    }
    format!("Bounds vs simulation, n = {n}\n{}", t.render())
}

// ---------------------------------------------------------------------
// Stability sweep (§5.1 thresholds).
// ---------------------------------------------------------------------

/// One λ point of a stability sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityRow {
    /// Per-node arrival rate.
    pub lambda: f64,
    /// λ relative to the standard threshold.
    pub lambda_over_threshold: f64,
    /// Population at the horizon divided by the time average — ≈ 1 for
    /// stable systems, ≫ 1 when the backlog grows linearly.
    pub growth: f64,
    /// Time-averaged population.
    pub avg_n: f64,
    /// Whether optimal §5.1 service rates were installed.
    pub optimal_rates: bool,
}

/// Sweeps λ across the stability boundary, optionally with the Theorem 15
/// allocation installed (budget = standard network cost `4n(n−1)`).
#[must_use]
pub fn stability_sweep(
    n: usize,
    lambdas: &[f64],
    optimal_rates: bool,
    scale: &Scale,
) -> Vec<StabilityRow> {
    let threshold = mesh_stability_threshold(n);
    lambdas
        .par_iter()
        .map(|&lambda| {
            let rates = if optimal_rates {
                let edge_rates = mesh_thm6_rates(&Mesh2D::square(n), lambda);
                let costs = vec![1.0; edge_rates.len()];
                optimal_allocation(&edge_rates, &costs, mesh_unit_budget(n))
            } else {
                None
            };
            let mut sc = Scenario::mesh(n)
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(0.9))
                .warmup(0.0)
                .seed(scale.seed ^ 0x57AB ^ ((lambda * 1e6) as u64));
            if let Some(r) = rates {
                sc = sc.service_rates(r);
            }
            let res = sc.run();
            StabilityRow {
                lambda,
                lambda_over_threshold: lambda / threshold,
                growth: if res.time_avg_n > 0.0 {
                    res.final_n / res.time_avg_n
                } else {
                    0.0
                },
                avg_n: res.time_avg_n,
                optimal_rates,
            }
        })
        .collect()
}

/// Renders a stability sweep.
#[must_use]
pub fn render_stability(n: usize, rows: &[StabilityRow]) -> String {
    let mut t = TextTable::new(&["lambda", "λ/λ*", "avg N", "final/avg N", "verdict"]);
    for r in rows {
        t.row(vec![
            format!("{:.4}", r.lambda),
            format!("{:.3}", r.lambda_over_threshold),
            format!("{:.1}", r.avg_n),
            format!("{:.2}", r.growth),
            if r.growth > 1.8 {
                "UNSTABLE".into()
            } else {
                "stable".into()
            },
        ]);
    }
    format!(
        "Stability sweep, n = {n} ({}; standard λ* = {:.4}, optimal-allocation λ* = {:.4})\n{}",
        if rows.first().is_some_and(|r| r.optimal_rates) {
            "optimal rates"
        } else {
            "standard rates"
        },
        mesh_stability_threshold(n),
        optimal_stability_threshold(n),
        t.render()
    )
}

// ---------------------------------------------------------------------
// Capacity allocation (§5.1 / Theorem 15).
// ---------------------------------------------------------------------

/// One λ point comparing the standard and optimally configured arrays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityRow {
    /// Per-node arrival rate.
    pub lambda: f64,
    /// Jackson delay, standard unit rates.
    pub t_jackson_standard: f64,
    /// Jackson delay, Theorem 15 rates (closed form).
    pub t_jackson_optimal: f64,
    /// Simulated delay with deterministic transmissions and Theorem 15
    /// rates — the §5.1 claim is that the Jackson value upper-bounds this.
    pub t_sim_optimal_det: f64,
    /// Simulated delay with exponential transmissions and Theorem 15 rates
    /// — should match the closed form.
    pub t_sim_optimal_exp: f64,
}

/// Compares standard vs optimal capacity allocation at each λ.
#[must_use]
pub fn capacity_comparison(n: usize, lambdas: &[f64], scale: &Scale) -> Vec<CapacityRow> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let mesh = Mesh2D::square(n);
            let rates = mesh_thm6_rates(&mesh, lambda);
            let costs = vec![1.0; rates.len()];
            let budget = mesh_unit_budget(n);
            let gamma = mesh_total_arrival(n, lambda);
            let phi = optimal_allocation(&rates, &costs, budget)
                .expect("lambda above 6/(n+1) not allowed here");
            let sim = |service: ServiceKind, seed: u64| {
                Scenario::mesh(n)
                    .load(Load::Lambda(lambda))
                    .horizon(scale.horizon(0.9))
                    .warmup(scale.warmup(0.9))
                    .seed(seed)
                    .service(service)
                    .service_rates(phi.clone())
                    .run()
                    .avg_delay
            };
            CapacityRow {
                lambda,
                t_jackson_standard: jackson::mean_delay(&rates, &vec![1.0; rates.len()], gamma),
                t_jackson_optimal: optimal_delay(&rates, &costs, budget, gamma),
                t_sim_optimal_det: sim(ServiceKind::Deterministic, scale.seed ^ 0xD1),
                t_sim_optimal_exp: sim(ServiceKind::Exponential, scale.seed ^ 0xD2),
            }
        })
        .collect()
}

/// Renders the capacity comparison.
#[must_use]
pub fn render_capacity(n: usize, rows: &[CapacityRow]) -> String {
    let mut t = TextTable::new(&[
        "lambda",
        "Jackson std",
        "Jackson opt",
        "sim opt (det)",
        "sim opt (exp)",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:.4}", r.lambda),
            format!("{:.3}", r.t_jackson_standard),
            format!("{:.3}", r.t_jackson_optimal),
            format!("{:.3}", r.t_sim_optimal_det),
            format!("{:.3}", r.t_sim_optimal_exp),
        ]);
    }
    format!(
        "Capacity allocation (Theorem 15), n = {n}, budget D = 4n(n−1)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Hypercube (§4.5).
// ---------------------------------------------------------------------

/// One `(p, λ)` point of the hypercube bound study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HypercubeRow {
    /// Bit-flip probability of the destination distribution.
    pub p: f64,
    /// Edge utilization `λp`.
    pub utilization: f64,
    /// Simulated delay.
    pub t_sim: f64,
    /// Product-form upper bound.
    pub t_upper: f64,
    /// Theorem 12 lower bound.
    pub t_lower12: f64,
    /// High-load gap of the new bound, `2(dp+1−p)`.
    pub new_gap: f64,
    /// Previous gap, `2d`.
    pub old_gap: f64,
}

/// Simulates the hypercube against its bounds for each `p` at fixed edge
/// utilization.
#[must_use]
pub fn hypercube_study(d: usize, ps: &[f64], utilization: f64, scale: &Scale) -> Vec<HypercubeRow> {
    ps.par_iter()
        .map(|&p| {
            let sc = Scenario::hypercube(d)
                .traffic(TrafficSpec::bernoulli(p))
                .load(Load::Utilization(utilization))
                .horizon(scale.horizon(utilization))
                .warmup(scale.warmup(utilization))
                .seed(scale.seed ^ 0xC0BE ^ ((p * 1e4) as u64));
            let lambda = sc.lambda();
            HypercubeRow {
                p,
                utilization,
                t_sim: sc.run().avg_delay,
                t_upper: hcb::upper_bound_delay(d, lambda, p),
                t_lower12: hcb::thm12_lower(d, lambda, p),
                new_gap: hcb::new_gap(d, p),
                old_gap: hcb::previous_gap(d),
            }
        })
        .collect()
}

/// Renders the hypercube study.
#[must_use]
pub fn render_hypercube(d: usize, rows: &[HypercubeRow]) -> String {
    let mut t = TextTable::new(&["p", "util", "lower12", "T(sim)", "upper", "2(dp+1−p)", "2d"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.p),
            format!("{:.2}", r.utilization),
            format!("{:.3}", r.t_lower12),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.t_upper),
            format!("{:.2}", r.new_gap),
            format!("{:.2}", r.old_gap),
        ]);
    }
    format!("Hypercube d = {d} (§4.5)\n{}", t.render())
}

// ---------------------------------------------------------------------
// Butterfly (§4.5).
// ---------------------------------------------------------------------

/// One butterfly size point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ButterflyRow {
    /// Levels `d`.
    pub d: usize,
    /// Input arrival rate λ (edge utilization λ/2).
    pub lambda: f64,
    /// Simulated delay.
    pub t_sim: f64,
    /// Product-form upper bound.
    pub t_upper: f64,
    /// Theorem 10 lower bound.
    pub t_lower10: f64,
}

/// Simulates butterflies of several depths against their bounds.
#[must_use]
pub fn butterfly_study(ds: &[usize], utilization: f64, scale: &Scale) -> Vec<ButterflyRow> {
    let lambda = 2.0 * utilization;
    ds.par_iter()
        .map(|&d| {
            let sc = Scenario::butterfly(d)
                .load(Load::Utilization(utilization))
                .horizon(scale.horizon(utilization))
                .warmup(scale.warmup(utilization))
                .seed(scale.seed ^ 0xBF ^ (d as u64));
            ButterflyRow {
                d,
                lambda,
                t_sim: sc.run().avg_delay,
                t_upper: bfb::upper_bound_delay(d, lambda),
                t_lower10: bfb::thm10_lower(d, lambda),
            }
        })
        .collect()
}

/// Renders the butterfly study.
#[must_use]
pub fn render_butterfly(rows: &[ButterflyRow]) -> String {
    let mut t = TextTable::new(&["d", "lambda", "lower10", "T(sim)", "upper"]);
    for r in rows {
        t.row(vec![
            r.d.to_string(),
            format!("{:.3}", r.lambda),
            format!("{:.3}", r.t_lower10),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.t_upper),
        ]);
    }
    format!("Butterfly (§4.5)\n{}", t.render())
}

// ---------------------------------------------------------------------
// Randomized greedy vs standard greedy (§6).
// ---------------------------------------------------------------------

/// One load point of the randomized-vs-standard comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomizedRow {
    /// Table-ρ.
    pub rho: f64,
    /// Standard greedy simulated delay.
    pub t_greedy: f64,
    /// Randomized greedy simulated delay.
    pub t_randomized: f64,
}

/// Compares the two routers on the same grid of loads.
#[must_use]
pub fn randomized_study(n: usize, rhos: &[f64], scale: &Scale) -> Vec<RandomizedRow> {
    rhos.par_iter()
        .map(|&rho| {
            let run = |router: RouterSpec, seed: u64| {
                Scenario::mesh(n)
                    .load(Load::TableRho(rho))
                    .horizon(scale.horizon(rho))
                    .warmup(scale.warmup(rho))
                    .seed(seed)
                    .router(router)
                    .run()
                    .avg_delay
            };
            RandomizedRow {
                rho,
                t_greedy: run(RouterSpec::Greedy, scale.seed ^ 0x61 ^ ((rho * 1e3) as u64)),
                t_randomized: run(
                    RouterSpec::Randomized,
                    scale.seed ^ 0x62 ^ ((rho * 1e3) as u64),
                ),
            }
        })
        .collect()
}

/// Renders the comparison.
#[must_use]
pub fn render_randomized(n: usize, rows: &[RandomizedRow]) -> String {
    let mut t = TextTable::new(&["rho", "greedy", "randomized", "ratio"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.rho),
            format!("{:.3}", r.t_greedy),
            format!("{:.3}", r.t_randomized),
            format!("{:.3}", r.t_randomized / r.t_greedy),
        ]);
    }
    format!(
        "Randomized greedy vs standard greedy, n = {n} (§6)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Torus vs array (§6).
// ---------------------------------------------------------------------

/// One load point of the torus-vs-array comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TorusRow {
    /// Per-node arrival rate.
    pub lambda: f64,
    /// Array simulated delay.
    pub t_array: f64,
    /// Torus simulated delay (same λ; the torus has more capacity).
    pub t_torus: f64,
    /// Torus mean distance (trivial lower bound).
    pub torus_nbar: f64,
    /// Theorem 10 lower bound for the torus (valid despite §6's open upper
    /// bound: the copy argument needs neither layering nor Markov routing).
    pub torus_lower10: f64,
}

/// Simulates the torus next to the array at the same arrival rates.
#[must_use]
pub fn torus_study(n: usize, lambdas: &[f64], scale: &Scale) -> Vec<TorusRow> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let torus = Scenario::torus(n)
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(0.8))
                .warmup(scale.warmup(0.8))
                .seed(scale.seed ^ 0x70 ^ ((lambda * 1e5) as u64));
            let array = Scenario::mesh(n)
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(0.8))
                .warmup(scale.warmup(0.8))
                .seed(scale.seed ^ 0x70 ^ ((lambda * 1e5) as u64));
            TorusRow {
                lambda,
                t_array: array.run().avg_delay,
                t_torus: torus.run().avg_delay,
                torus_nbar: torus.mean_distance(),
                torus_lower10: meshbound_queueing::bounds::torus::best_lower_bound(n, lambda),
            }
        })
        .collect()
}

/// Renders the torus study.
#[must_use]
pub fn render_torus(n: usize, rows: &[TorusRow]) -> String {
    let mut t = TextTable::new(&["lambda", "T(array)", "torus lower", "T(torus)", "torus n̄"]);
    for r in rows {
        t.row(vec![
            format!("{:.4}", r.lambda),
            format!("{:.3}", r.t_array),
            format!("{:.3}", r.torus_lower10),
            format!("{:.3}", r.t_torus),
            format!("{:.3}", r.torus_nbar),
        ]);
    }
    format!(
        "Torus vs array, n = {n} (§6: torus upper bound open; Thm 10 lower bound shown)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Higher-dimensional meshes (§5.2).
// ---------------------------------------------------------------------

/// One higher-dimensional mesh data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdRow {
    /// Per-axis extents.
    pub dims: Vec<usize>,
    /// Per-node arrival rate.
    pub lambda: f64,
    /// Peak edge utilization (from exact enumerated rates).
    pub peak_util: f64,
    /// Simulated delay.
    pub t_sim: f64,
    /// Product-form upper bound from enumerated rates (greedy on a k-dim
    /// mesh is layered axis-by-axis and Markovian, so Theorem 5 extends).
    pub t_upper: f64,
    /// Theorem 10 lower bound with `d = Σ(n_a − 1)`.
    pub t_lower10: f64,
}

/// Simulates `k`-dimensional meshes against bounds computed from exact
/// enumerated rates — the §5.2 extension ("one can explicitly determine the
/// arrival rates at individual queues combinatorially").
#[must_use]
pub fn kd_study(shapes: &[Vec<usize>], lambda: f64, scale: &Scale) -> Vec<KdRow> {
    use meshbound_queueing::bounds::lower::lower_bound_from_rates;
    use meshbound_queueing::bounds::upper::upper_bound_from_rates;

    shapes
        .par_iter()
        .map(|dims| {
            let sc = Scenario::mesh_kd(dims)
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(0.8))
                .warmup(scale.warmup(0.8))
                .seed(scale.seed ^ 0x6B64);
            let rates = sc.edge_rates();
            let gamma = sc.total_arrival();
            let d_max = sc.topology.max_distance();
            KdRow {
                dims: dims.clone(),
                lambda,
                peak_util: rates.iter().fold(0.0, |a: f64, &b| a.max(b)),
                t_sim: sc.run().avg_delay,
                t_upper: upper_bound_from_rates(&rates, gamma),
                t_lower10: lower_bound_from_rates(&rates, d_max as f64, gamma),
            }
        })
        .collect()
}

/// Renders the higher-dimensional mesh study.
#[must_use]
pub fn render_kd(rows: &[KdRow]) -> String {
    let mut t = TextTable::new(&["dims", "lambda", "peak util", "lower10", "T(sim)", "upper"]);
    for r in rows {
        let dims: Vec<String> = r.dims.iter().map(ToString::to_string).collect();
        t.row(vec![
            dims.join("x"),
            format!("{:.3}", r.lambda),
            format!("{:.3}", r.peak_util),
            format!("{:.3}", r.t_lower10),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.t_upper),
        ]);
    }
    format!("Higher-dimensional meshes (§5.2)\n{}", t.render())
}

// ---------------------------------------------------------------------
// Slotted time (§5.2).
// ---------------------------------------------------------------------

/// One slot-width point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlottedRow {
    /// Slot width τ (0 denotes continuous time).
    pub tau: f64,
    /// Simulated delay.
    pub t_sim: f64,
}

/// Compares slotted arrivals at several widths against continuous time.
#[must_use]
pub fn slotted_study(n: usize, rho: f64, taus: &[f64], scale: &Scale) -> Vec<SlottedRow> {
    let lambda = 4.0 * rho / n as f64;
    let mut jobs: Vec<Option<f64>> = vec![None];
    jobs.extend(taus.iter().map(|&t| Some(t)));
    jobs.par_iter()
        .map(|&tau| {
            let mut sc = Scenario::mesh(n)
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(rho))
                .warmup(scale.warmup(rho))
                .seed(scale.seed ^ 0x5107);
            if let Some(t) = tau {
                sc = sc.slot(t);
            }
            SlottedRow {
                tau: tau.unwrap_or(0.0),
                t_sim: sc.run().avg_delay,
            }
        })
        .collect()
}

/// Renders the slotted study.
#[must_use]
pub fn render_slotted(n: usize, rho: f64, rows: &[SlottedRow]) -> String {
    let mut t = TextTable::new(&["tau", "T(sim)"]);
    for r in rows {
        t.row(vec![
            if r.tau == 0.0 {
                "continuous".into()
            } else {
                format!("{:.2}", r.tau)
            },
            format!("{:.3}", r.t_sim),
        ]);
    }
    format!(
        "Slotted time, n = {n}, ρ = {rho} (§5.2: slotted within τ of continuous)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Non-uniform (nearby) destinations (§5.2).
// ---------------------------------------------------------------------

/// One stop-probability point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NearbyRow {
    /// Per-node stop probability (1 recovers "stay very close").
    pub stop: f64,
    /// Simulated delay.
    pub t_sim: f64,
    /// Product-form upper bound computed from enumerated rates.
    pub t_upper: f64,
}

/// Simulates the §5.2 nearby-destination walk and checks the Theorem 5
/// upper bound still applies (the routing stays Markovian).
#[must_use]
pub fn nearby_study(n: usize, stops: &[f64], lambda: f64, scale: &Scale) -> Vec<NearbyRow> {
    stops
        .par_iter()
        .map(|&stop| {
            let sc = Scenario::mesh(n)
                .traffic(TrafficSpec::nearby(stop))
                .load(Load::Lambda(lambda))
                .horizon(scale.horizon(0.8))
                .warmup(scale.warmup(0.8))
                .seed(scale.seed ^ 0x4EA ^ ((stop * 100.0) as u64));
            NearbyRow {
                stop,
                t_sim: sc.run().avg_delay,
                t_upper: BoundsReport::compute_for(&sc).upper,
            }
        })
        .collect()
}

/// Renders the nearby-destination study.
#[must_use]
pub fn render_nearby(n: usize, lambda: f64, rows: &[NearbyRow]) -> String {
    let mut t = TextTable::new(&["stop", "T(sim)", "upper"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.stop),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.t_upper),
        ]);
    }
    format!(
        "Nearby destinations (§5.2), n = {n}, λ = {lambda}\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Jackson dominance (§3.3): deterministic FIFO ≤ Jackson = product form.
// ---------------------------------------------------------------------

/// One load point of the dominance check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DominanceRow {
    /// Table-ρ.
    pub rho: f64,
    /// Deterministic-service FIFO simulated delay (the standard model).
    pub t_fifo_det: f64,
    /// Exponential-service (Jackson) simulated delay.
    pub t_jackson_sim: f64,
    /// Product-form closed form (= Theorem 7 upper bound).
    pub t_product_form: f64,
}

/// Verifies `T_FIFO ≤ T_Jackson ≈ product form` across loads.
#[must_use]
pub fn dominance_study(n: usize, rhos: &[f64], scale: &Scale) -> Vec<DominanceRow> {
    rhos.par_iter()
        .map(|&rho| {
            let lambda = 4.0 * rho / n as f64;
            let run = |service: ServiceKind, seed: u64| {
                Scenario::mesh(n)
                    .load(Load::TableRho(rho))
                    .horizon(scale.horizon(rho))
                    .warmup(scale.warmup(rho))
                    .seed(seed)
                    .service(service)
                    .run()
                    .avg_delay
            };
            DominanceRow {
                rho,
                t_fifo_det: run(ServiceKind::Deterministic, scale.seed ^ 0xF1F0),
                t_jackson_sim: run(ServiceKind::Exponential, scale.seed ^ 0x1ACC),
                t_product_form: meshbound_queueing::bounds::upper::upper_bound_delay(n, lambda),
            }
        })
        .collect()
}

/// Renders the dominance study.
#[must_use]
pub fn render_dominance(n: usize, rows: &[DominanceRow]) -> String {
    let mut t = TextTable::new(&["rho", "T FIFO(det)", "T Jackson(sim)", "product form"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.rho),
            format!("{:.3}", r.t_fifo_det),
            format!("{:.3}", r.t_jackson_sim),
            format!("{:.3}", r.t_product_form),
        ]);
    }
    format!("Jackson dominance (§3.3), n = {n}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale::quick()
    }

    #[test]
    fn bounds_bracket_simulation() {
        let rows = bounds_curve(5, &[0.3, 0.7], &quick());
        for r in &rows {
            assert!(
                r.report.lower_best <= r.t_sim * 1.1,
                "ρ={}: lower {} vs sim {}",
                r.rho,
                r.report.lower_best,
                r.t_sim
            );
            assert!(
                r.t_sim <= r.report.upper * 1.1,
                "ρ={}: sim {} vs upper {}",
                r.rho,
                r.t_sim,
                r.report.upper
            );
        }
    }

    #[test]
    fn stability_flips_at_threshold() {
        let n = 6;
        let thr = mesh_stability_threshold(n);
        let rows = stability_sweep(n, &[0.7 * thr, 1.3 * thr], false, &quick());
        assert!(rows[0].growth < 1.8, "below threshold grew: {:?}", rows[0]);
        assert!(
            rows[1].growth > 1.8,
            "above threshold stable: {:?}",
            rows[1]
        );
    }

    #[test]
    fn optimal_rates_stabilize_beyond_standard_capacity() {
        // §5.1: λ between 4/n and 6/(n+1) is unstable standard but stable
        // with the Theorem 15 allocation.
        // n = 6: standard threshold 4/n = 0.667, optimal threshold 6/7 = 0.857.
        // λ = 0.76 sits comfortably between the two.
        let n = 6;
        let lambda = 0.76;
        assert!(lambda > 1.1 * mesh_stability_threshold(n));
        assert!(lambda < 0.9 * optimal_stability_threshold(n));
        let std_rows = stability_sweep(n, &[lambda], false, &quick());
        let opt_rows = stability_sweep(n, &[lambda], true, &quick());
        assert!(
            std_rows[0].growth > 1.8,
            "standard should destabilize: {:?}",
            std_rows[0]
        );
        assert!(
            opt_rows[0].growth < 1.8,
            "optimal should stabilize: {:?}",
            opt_rows[0]
        );
    }

    #[test]
    fn capacity_simulation_respects_jackson_upper_bound() {
        let n = 5;
        let rows = capacity_comparison(n, &[0.3], &quick());
        let r = &rows[0];
        assert!(r.t_jackson_optimal < r.t_jackson_standard);
        // Deterministic-service sim is upper-bounded by the Jackson value
        // (allow simulation noise).
        assert!(
            r.t_sim_optimal_det <= r.t_jackson_optimal * 1.1,
            "det sim {} vs jackson {}",
            r.t_sim_optimal_det,
            r.t_jackson_optimal
        );
        // Exponential-service sim matches the closed form.
        assert!(
            (r.t_sim_optimal_exp - r.t_jackson_optimal).abs() / r.t_jackson_optimal < 0.15,
            "exp sim {} vs closed {}",
            r.t_sim_optimal_exp,
            r.t_jackson_optimal
        );
    }

    #[test]
    fn hypercube_sim_within_bounds() {
        let rows = hypercube_study(5, &[0.5], 0.6, &quick());
        let r = &rows[0];
        assert!(r.t_lower12 <= r.t_sim * 1.1, "{r:?}");
        assert!(r.t_sim <= r.t_upper * 1.1, "{r:?}");
        assert!(r.new_gap < r.old_gap);
    }

    #[test]
    fn butterfly_sim_within_bounds() {
        let rows = butterfly_study(&[3], 0.6, &quick());
        let r = &rows[0];
        assert!(r.t_lower10 <= r.t_sim * 1.1, "{r:?}");
        assert!(r.t_sim <= r.t_upper * 1.1, "{r:?}");
        assert!(r.t_sim >= r.d as f64 * 0.95);
    }

    #[test]
    fn randomized_not_better_than_greedy() {
        // §6: randomized greedy performs slightly worse in simulation.
        let rows = randomized_study(6, &[0.8], &quick());
        assert!(
            rows[0].t_randomized > rows[0].t_greedy * 0.97,
            "{:?}",
            rows[0]
        );
    }

    #[test]
    fn torus_beats_array_at_same_lambda() {
        // Wraparound halves distances and doubles the cut capacity.
        let rows = torus_study(6, &[0.3], &quick());
        assert!(rows[0].t_torus < rows[0].t_array, "{:?}", rows[0]);
    }

    #[test]
    fn kd_mesh_sim_within_bounds() {
        let rows = kd_study(&[vec![3, 3, 3], vec![4, 4]], 0.15, &quick());
        for r in &rows {
            assert!(r.peak_util < 1.0, "{r:?}");
            assert!(r.t_lower10 <= r.t_sim * 1.1, "{r:?}");
            assert!(r.t_sim <= r.t_upper * 1.1, "{r:?}");
        }
    }

    #[test]
    fn torus_lower_bound_below_sim() {
        let rows = torus_study(6, &[0.3], &quick());
        assert!(
            rows[0].torus_lower10 <= rows[0].t_torus * 1.05,
            "{:?}",
            rows[0]
        );
    }

    #[test]
    fn slotted_within_tau_of_continuous() {
        let rows = slotted_study(5, 0.5, &[1.0], &quick());
        let cont = rows[0].t_sim;
        let slotted = rows[1].t_sim;
        assert!(
            (slotted - cont).abs() <= 1.0 + 0.5,
            "cont {cont}, slotted {slotted}"
        );
    }

    #[test]
    fn nearby_destinations_upper_bound_holds() {
        let rows = nearby_study(5, &[0.5], 0.3, &quick());
        assert!(rows[0].t_sim <= rows[0].t_upper * 1.1, "{:?}", rows[0]);
    }

    #[test]
    fn jackson_dominates_fifo() {
        let rows = dominance_study(5, &[0.7], &quick());
        let r = &rows[0];
        assert!(r.t_fifo_det <= r.t_jackson_sim * 1.05, "{r:?}");
        assert!(
            (r.t_jackson_sim - r.t_product_form).abs() / r.t_product_form < 0.15,
            "{r:?}"
        );
    }
}
