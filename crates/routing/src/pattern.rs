//! Traffic patterns: permutation, hotspot and matrix destination models.
//!
//! The paper proves its bounds for uniform random destinations, but the
//! bounding technique itself only needs the per-edge arrival-rate vector —
//! which [`crate::rates`] can compute for *any* oblivious workload. This
//! module supplies the standard array-network workloads from the
//! interconnection-network literature so scenarios can exercise them:
//!
//! * [`PermutationDest`] — the classic address permutations (transpose,
//!   bit-reversal, bit-complement, perfect shuffle), defined per topology
//!   through [`PatternTopology`];
//! * [`HotspotDest`] — a fraction of all traffic converges on one hot
//!   node, the rest stays uniform;
//! * [`MatrixDest`] — an explicit traffic matrix: each source draws its
//!   destination from its own (row-normalized) distribution.
//!
//! All three implement [`DestSampler`] for every [`Topology`], so they
//! plug into the simulator and the exact rate enumeration unchanged.

use crate::dest::{DestSampler, DestSupport};
use meshbound_topology::{Butterfly, Hypercube, Mesh2D, MeshKD, NodeId, Topology, Torus2D};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The classic address permutations of the interconnection-network
/// literature (Dally & Towles' benchmark suite). Each maps every source
/// to exactly one destination; how the map reads the address is defined
/// per topology by [`PatternTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PermutationKind {
    /// Matrix transpose: `(r, c) → (c, r)` on square arrays; address
    /// rotation by half the bit width on the hypercube.
    Transpose,
    /// Reverse the address bits (per axis on arrays).
    BitReversal,
    /// Complement the address: `(r, c) → (R−1−r, C−1−c)` on arrays,
    /// bitwise NOT on the hypercube.
    BitComplement,
    /// Perfect shuffle: rotate the flat address left by one bit.
    Shuffle,
}

impl PermutationKind {
    /// All permutation kinds, in spec-grammar order.
    pub const ALL: [PermutationKind; 4] = [
        PermutationKind::Transpose,
        PermutationKind::BitReversal,
        PermutationKind::BitComplement,
        PermutationKind::Shuffle,
    ];

    /// The spec-string token (`"transpose"`, `"bitrev"`, `"bitcomp"`,
    /// `"shuffle"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PermutationKind::Transpose => "transpose",
            PermutationKind::BitReversal => "bitrev",
            PermutationKind::BitComplement => "bitcomp",
            PermutationKind::Shuffle => "shuffle",
        }
    }

    /// Parses a spec-string token.
    ///
    /// # Errors
    ///
    /// Returns the offending token when it is not one of
    /// `transpose|bitrev|bitcomp|shuffle`.
    pub fn parse_str(s: &str) -> Result<Self, String> {
        PermutationKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| {
                format!(
                    "unknown permutation `{s}` (expected transpose, bitrev, bitcomp or shuffle)"
                )
            })
    }
}

impl std::fmt::Display for PermutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reverses the low `bits` bits of `x`.
fn reverse_bits(x: u32, bits: u32) -> u32 {
    if bits == 0 {
        return x;
    }
    x.reverse_bits() >> (32 - bits)
}

/// Rotates the low `bits` bits of `x` left by one.
fn rotl1(x: u32, bits: u32) -> u32 {
    debug_assert!(bits >= 1);
    ((x << 1) | (x >> (bits - 1))) & ((1u32 << bits) - 1).max(1)
}

/// `log2(n)` when `n` is a power of two.
fn log2_exact(n: usize) -> Option<u32> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// A topology on which address permutations are defined.
///
/// `supports_permutation` reports whether a kind is well-defined on this
/// instance (and not the identity map, which would generate no traffic);
/// `permutation_target` evaluates the map. Callers must validate support
/// before sampling — `permutation_target` panics on unsupported kinds.
pub trait PatternTopology: Topology {
    /// Whether `kind` is a well-defined, non-identity permutation here.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when it is not (wrong shape, size
    /// not a power of two, or an identity map).
    fn supports_permutation(&self, kind: PermutationKind) -> Result<(), String>;

    /// The destination `kind` maps `src` to.
    ///
    /// # Panics
    ///
    /// May panic if [`PatternTopology::supports_permutation`] rejects
    /// `kind` on this instance.
    fn permutation_target(&self, kind: PermutationKind, src: NodeId) -> NodeId;

    /// The topology's geometrically central node — the default hotspot
    /// placement. On grids this is the middle coordinate tuple (maximal
    /// fan-in, the Pfister–Norton convention); on vertex-transitive
    /// topologies any node serves.
    fn central_node(&self) -> NodeId {
        NodeId(self.num_nodes() as u32 / 2)
    }
}

/// Shared array-shaped permutation logic for [`Mesh2D`] and [`Torus2D`]
/// (both are row-major `rows × cols` grids).
fn grid_supports(rows: usize, cols: usize, kind: PermutationKind) -> Result<(), String> {
    match kind {
        PermutationKind::Transpose => {
            if rows == cols {
                Ok(())
            } else {
                Err(format!("transpose needs a square array, got {rows}x{cols}"))
            }
        }
        PermutationKind::BitComplement => Ok(()),
        PermutationKind::BitReversal => {
            if log2_exact(rows).is_none() || log2_exact(cols).is_none() {
                Err(format!(
                    "bit reversal needs power-of-two extents, got {rows}x{cols}"
                ))
            } else if rows <= 2 && cols <= 2 {
                Err("bit reversal on a 2x2 array is the identity (no traffic)".into())
            } else {
                Ok(())
            }
        }
        PermutationKind::Shuffle => {
            if log2_exact(rows).is_none() || log2_exact(cols).is_none() {
                Err(format!(
                    "shuffle needs a power-of-two node count, got {rows}x{cols}"
                ))
            } else {
                Ok(())
            }
        }
    }
}

fn grid_target(
    rows: usize,
    cols: usize,
    kind: PermutationKind,
    r: usize,
    c: usize,
) -> (usize, usize) {
    match kind {
        PermutationKind::Transpose => (c, r),
        PermutationKind::BitComplement => (rows - 1 - r, cols - 1 - c),
        PermutationKind::BitReversal => {
            let rb = log2_exact(rows).expect("validated power of two");
            let cb = log2_exact(cols).expect("validated power of two");
            (
                reverse_bits(r as u32, rb) as usize,
                reverse_bits(c as u32, cb) as usize,
            )
        }
        PermutationKind::Shuffle => {
            // Perfect shuffle on the flat row-major address.
            let bits = log2_exact(rows * cols).expect("validated power of two");
            let id = rotl1((r * cols + c) as u32, bits) as usize;
            (id / cols, id % cols)
        }
    }
}

impl PatternTopology for Mesh2D {
    fn supports_permutation(&self, kind: PermutationKind) -> Result<(), String> {
        grid_supports(self.rows(), self.cols(), kind)
    }

    fn permutation_target(&self, kind: PermutationKind, src: NodeId) -> NodeId {
        let (r, c) = self.coords(src);
        let (r2, c2) = grid_target(self.rows(), self.cols(), kind, r, c);
        self.node(r2, c2)
    }

    fn central_node(&self) -> NodeId {
        self.node(self.rows() / 2, self.cols() / 2)
    }
}

impl PatternTopology for Torus2D {
    fn supports_permutation(&self, kind: PermutationKind) -> Result<(), String> {
        grid_supports(self.side(), self.side(), kind)
    }

    fn permutation_target(&self, kind: PermutationKind, src: NodeId) -> NodeId {
        let (r, c) = self.coords(src);
        let (r2, c2) = grid_target(self.side(), self.side(), kind, r, c);
        self.node(r2, c2)
    }

    fn central_node(&self) -> NodeId {
        self.node(self.side() / 2, self.side() / 2)
    }
}

impl PatternTopology for Hypercube {
    fn supports_permutation(&self, kind: PermutationKind) -> Result<(), String> {
        let d = self.dim();
        match kind {
            PermutationKind::Transpose if !d.is_multiple_of(2) => Err(format!(
                "hypercube transpose rotates the address by d/2, which needs even d (got {d})"
            )),
            PermutationKind::BitReversal | PermutationKind::Shuffle if d == 1 => {
                Err("a 1-bit address makes this permutation the identity (no traffic)".into())
            }
            _ => Ok(()),
        }
    }

    fn permutation_target(&self, kind: PermutationKind, src: NodeId) -> NodeId {
        let d = self.dim() as u32;
        let mask = ((1u64 << d) - 1) as u32;
        let x = src.0;
        let y = match kind {
            // Rotate by d/2: swaps the "row" and "column" halves of the
            // address, the hypercube reading of matrix transpose.
            PermutationKind::Transpose => {
                let h = d / 2;
                ((x << h) | (x >> (d - h))) & mask
            }
            PermutationKind::BitReversal => reverse_bits(x, d),
            PermutationKind::BitComplement => !x & mask,
            PermutationKind::Shuffle => rotl1(x, d),
        };
        NodeId(y)
    }
}

impl PatternTopology for MeshKD {
    fn supports_permutation(&self, kind: PermutationKind) -> Result<(), String> {
        let dims = self.dims();
        match kind {
            PermutationKind::Transpose => {
                let palindromic = dims.iter().eq(dims.iter().rev());
                if palindromic && dims.len() >= 2 {
                    Ok(())
                } else {
                    Err(format!(
                        "k-d transpose reverses the axis order, which needs ≥ 2 axes with \
                         mirror-symmetric extents (got {dims:?})"
                    ))
                }
            }
            PermutationKind::BitComplement => Ok(()),
            PermutationKind::BitReversal => {
                if dims.iter().any(|&d| log2_exact(d).is_none()) {
                    Err(format!(
                        "bit reversal needs power-of-two extents, got {dims:?}"
                    ))
                } else if dims.iter().all(|&d| d <= 2) {
                    Err("bit reversal over 1-bit axes is the identity (no traffic)".into())
                } else {
                    Ok(())
                }
            }
            PermutationKind::Shuffle => {
                if dims.iter().any(|&d| log2_exact(d).is_none()) {
                    Err(format!("shuffle needs power-of-two extents, got {dims:?}"))
                } else if self.num_nodes() == 2 {
                    Err("shuffle of a 1-bit address is the identity (no traffic)".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    fn permutation_target(&self, kind: PermutationKind, src: NodeId) -> NodeId {
        match kind {
            PermutationKind::Transpose => {
                let mut coords = self.coords(src);
                coords.reverse();
                self.node(&coords)
            }
            PermutationKind::BitComplement => {
                let dims = self.dims();
                let coords: Vec<usize> = self
                    .coords(src)
                    .into_iter()
                    .zip(&dims)
                    .map(|(c, &d)| d - 1 - c)
                    .collect();
                self.node(&coords)
            }
            PermutationKind::BitReversal => {
                let dims = self.dims();
                let coords: Vec<usize> = self
                    .coords(src)
                    .into_iter()
                    .zip(&dims)
                    .map(|(c, &d)| {
                        reverse_bits(c as u32, log2_exact(d).expect("validated")) as usize
                    })
                    .collect();
                self.node(&coords)
            }
            PermutationKind::Shuffle => {
                // Mixed-radix ids with power-of-two extents are plain
                // binary numbers, so the flat-address shuffle applies.
                let bits = log2_exact(self.num_nodes()).expect("validated");
                NodeId(rotl1(src.0, bits))
            }
        }
    }

    fn central_node(&self) -> NodeId {
        let coords: Vec<usize> = self.dims().iter().map(|&d| d / 2).collect();
        self.node(&coords)
    }
}

impl PatternTopology for Butterfly {
    fn supports_permutation(&self, _kind: PermutationKind) -> Result<(), String> {
        Err(
            "permutations are not defined on the butterfly: packets enter at level 0 \
             and leave at the output level, so sources and destinations are disjoint"
                .into(),
        )
    }

    fn permutation_target(&self, kind: PermutationKind, _src: NodeId) -> NodeId {
        panic!("butterfly does not support the {kind} permutation");
    }
}

/// A permutation workload: each source sends all its traffic to the one
/// destination its [`PermutationKind`] assigns it. Fixed points (e.g. the
/// diagonal under transpose) generate zero-distance packets.
///
/// The destination is computed on the fly from the topology's address
/// arithmetic — no table is materialized, so the sampler is free at any
/// topology size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutationDest {
    /// Which permutation to apply.
    pub kind: PermutationKind,
}

impl PermutationDest {
    /// Creates the sampler after checking the permutation is well-defined
    /// (and not the identity) on `topo`.
    ///
    /// # Errors
    ///
    /// Propagates [`PatternTopology::supports_permutation`] rejections.
    pub fn new<T: PatternTopology>(topo: &T, kind: PermutationKind) -> Result<Self, String> {
        topo.supports_permutation(kind)?;
        Ok(Self { kind })
    }
}

impl<T: PatternTopology> DestSampler<T> for PermutationDest {
    #[inline]
    fn sample(&self, topo: &T, src: NodeId, _: &mut SmallRng) -> NodeId {
        topo.permutation_target(self.kind, src)
    }

    #[inline]
    fn weight(&self, topo: &T, src: NodeId, dst: NodeId) -> f64 {
        if topo.permutation_target(self.kind, src) == dst {
            1.0
        } else {
            0.0
        }
    }

    fn support(&self, topo: &T, src: NodeId) -> DestSupport {
        DestSupport::Sparse {
            points: vec![(topo.permutation_target(self.kind, src), 1.0)],
            uniform: 0.0,
        }
    }
}

/// A hotspot workload: each packet targets the hot node with probability
/// `frac` and a uniformly random node otherwise (Pfister & Norton's
/// hot-spot model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotDest {
    /// The hot node.
    pub hot: NodeId,
    /// Probability a packet targets the hot node, in `(0, 1]`.
    pub frac: f64,
}

impl HotspotDest {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `frac ∈ (0, 1]`.
    #[must_use]
    pub fn new(hot: NodeId, frac: f64) -> Self {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "hotspot fraction must be in (0,1]"
        );
        Self { hot, frac }
    }
}

impl<T: Topology> DestSampler<T> for HotspotDest {
    fn sample(&self, topo: &T, _: NodeId, rng: &mut SmallRng) -> NodeId {
        // One uniform decides hot-vs-uniform, a second picks the uniform
        // destination — drawn only on the uniform branch so hot traffic
        // costs one draw.
        if rng.gen::<f64>() < self.frac {
            self.hot
        } else {
            NodeId(rng.gen_range(0..topo.num_nodes() as u32))
        }
    }

    fn weight(&self, topo: &T, _: NodeId, dst: NodeId) -> f64 {
        let uniform = (1.0 - self.frac) / topo.num_nodes() as f64;
        if dst == self.hot {
            self.frac + uniform
        } else {
            uniform
        }
    }

    fn support(&self, _: &T, _: NodeId) -> DestSupport {
        DestSupport::Sparse {
            points: vec![(self.hot, self.frac)],
            uniform: 1.0 - self.frac,
        }
    }
}

/// An explicit traffic matrix: `rows[s][d]` is the relative rate of the
/// `s → d` flow. Each source draws destinations from its own row,
/// normalized; row sums give the per-source rate weights (resolved by the
/// scenario layer).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixDest {
    n: usize,
    /// Row-wise cumulative distributions, flattened (`n × n`); an all-zero
    /// row stays all-zero and marks a silent source.
    cum: Vec<f64>,
    /// Row-normalized probabilities, flattened (for exact weights).
    prob: Vec<f64>,
}

impl MatrixDest {
    /// Builds the sampler from a square non-negative matrix.
    ///
    /// # Errors
    ///
    /// Rejects non-square shapes, negative or non-finite entries, and the
    /// all-zero matrix.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, String> {
        let n = rows.len();
        if n == 0 {
            return Err("traffic matrix is empty".into());
        }
        let mut cum = Vec::with_capacity(n * n);
        let mut prob = Vec::with_capacity(n * n);
        let mut any_positive = false;
        for (s, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(format!(
                    "traffic matrix row {s} has {} entries, expected {n}",
                    row.len()
                ));
            }
            let mut total = 0.0;
            for (d, &v) in row.iter().enumerate() {
                if !(v >= 0.0 && v.is_finite()) {
                    return Err(format!("traffic matrix entry [{s}][{d}] = {v} is invalid"));
                }
                total += v;
            }
            if total > 0.0 {
                any_positive = true;
                let mut acc = 0.0;
                for &v in row {
                    acc += v / total;
                    cum.push(acc);
                    prob.push(v / total);
                }
                // Guard against rounding shortfall from the *last positive*
                // entry onward: clamping only the final bucket would let a
                // trailing zero-weight destination absorb the residual mass
                // and be sampled despite weight() == 0.
                let last_positive = row.iter().rposition(|&v| v > 0.0).expect("total > 0");
                for c in &mut cum[s * n + last_positive..(s + 1) * n] {
                    *c = 1.0;
                }
            } else {
                cum.extend(std::iter::repeat_n(0.0, n));
                prob.extend(std::iter::repeat_n(0.0, n));
            }
        }
        if !any_positive {
            return Err("traffic matrix is all zero (no traffic)".into());
        }
        Ok(Self { n, cum, prob })
    }

    /// Matrix side (`num_nodes` of the topology it targets).
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of all-zero rows — "silent sources" that generate no
    /// traffic at all. A mostly-zero matrix can look like a healthy
    /// workload (the rate vector and bounds are all finite), so the
    /// scenario layer surfaces this count in its reports.
    #[must_use]
    pub fn silent_sources(&self) -> usize {
        (0..self.n)
            .filter(|s| self.cum[(s + 1) * self.n - 1] == 0.0)
            .count()
    }
}

impl<T: Topology> DestSampler<T> for MatrixDest {
    fn sample(&self, _: &T, src: NodeId, rng: &mut SmallRng) -> NodeId {
        let row = &self.cum[src.index() * self.n..(src.index() + 1) * self.n];
        if row[self.n - 1] == 0.0 {
            // Silent source: its rate is zero, so this is never reached in
            // simulation; fall back to a self-packet for safety.
            return src;
        }
        let u: f64 = rng.gen();
        let d = row.partition_point(|&c| c <= u);
        NodeId(d.min(self.n - 1) as u32)
    }

    fn weight(&self, _: &T, src: NodeId, dst: NodeId) -> f64 {
        self.prob[src.index() * self.n + dst.index()]
    }

    fn support(&self, _: &T, src: NodeId) -> DestSupport {
        let row = &self.prob[src.index() * self.n..(src.index() + 1) * self.n];
        DestSupport::Sparse {
            points: row
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w > 0.0)
                .map(|(d, &w)| (NodeId(d as u32), w))
                .collect(),
            uniform: 0.0,
        }
    }
}

/// One sampler type covering every topology-generic pattern, so scenario
/// dispatch needs a single extra arm per topology instead of one per
/// pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum GenericDest {
    /// A [`PermutationDest`].
    Permutation(PermutationDest),
    /// A [`HotspotDest`].
    Hotspot(HotspotDest),
    /// A [`MatrixDest`].
    Matrix(MatrixDest),
}

impl<T: PatternTopology> DestSampler<T> for GenericDest {
    fn sample(&self, topo: &T, src: NodeId, rng: &mut SmallRng) -> NodeId {
        match self {
            GenericDest::Permutation(p) => p.sample(topo, src, rng),
            GenericDest::Hotspot(h) => h.sample(topo, src, rng),
            GenericDest::Matrix(m) => m.sample(topo, src, rng),
        }
    }

    fn weight(&self, topo: &T, src: NodeId, dst: NodeId) -> f64 {
        match self {
            GenericDest::Permutation(p) => p.weight(topo, src, dst),
            GenericDest::Hotspot(h) => h.weight(topo, src, dst),
            GenericDest::Matrix(m) => m.weight(topo, src, dst),
        }
    }

    fn support(&self, topo: &T, src: NodeId) -> DestSupport {
        match self {
            GenericDest::Permutation(p) => p.support(topo, src),
            GenericDest::Hotspot(h) => h.support(topo, src),
            GenericDest::Matrix(m) => m.support(topo, src),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Every supported `(topology, kind)` pair must be a bijection.
    fn assert_bijection<T: PatternTopology>(topo: &T, kind: PermutationKind) {
        let mut seen = vec![false; topo.num_nodes()];
        for v in topo.nodes() {
            let d = topo.permutation_target(kind, v);
            assert!(d.index() < topo.num_nodes(), "{kind}: {v} -> {d}");
            assert!(!seen[d.index()], "{kind}: two sources map to {d}");
            seen[d.index()] = true;
        }
    }

    #[test]
    fn mesh_permutations_are_bijections() {
        let m = Mesh2D::square(8);
        for kind in PermutationKind::ALL {
            m.supports_permutation(kind).unwrap();
            assert_bijection(&m, kind);
        }
    }

    #[test]
    fn torus_and_kd_and_hypercube_permutations_are_bijections() {
        let t = Torus2D::new(4);
        let h = Hypercube::new(6);
        let kd = MeshKD::new(&[4, 4, 4]);
        for kind in PermutationKind::ALL {
            for result in [
                t.supports_permutation(kind),
                h.supports_permutation(kind),
                kd.supports_permutation(kind),
            ] {
                result.unwrap();
            }
            assert_bijection(&t, kind);
            assert_bijection(&h, kind);
            assert_bijection(&kd, kind);
        }
    }

    #[test]
    fn transpose_swaps_mesh_coordinates() {
        let m = Mesh2D::square(5);
        let d = m.permutation_target(PermutationKind::Transpose, m.node(1, 3));
        assert_eq!(m.coords(d), (3, 1));
        // Diagonal nodes are fixed points.
        let fixed = m.permutation_target(PermutationKind::Transpose, m.node(2, 2));
        assert_eq!(m.coords(fixed), (2, 2));
    }

    #[test]
    fn bit_reversal_reverses_each_axis() {
        let m = Mesh2D::square(8); // 3 bits per axis
        let d = m.permutation_target(PermutationKind::BitReversal, m.node(1, 6));
        // rev3(1) = 4, rev3(6 = 110b) = 011b = 3.
        assert_eq!(m.coords(d), (4, 3));
    }

    #[test]
    fn bit_complement_reflects_through_the_center() {
        let m = Mesh2D::rect(3, 5);
        let d = m.permutation_target(PermutationKind::BitComplement, m.node(0, 1));
        assert_eq!(m.coords(d), (2, 3));
    }

    #[test]
    fn hypercube_complement_is_all_bits() {
        let h = Hypercube::new(5);
        let d = h.permutation_target(PermutationKind::BitComplement, NodeId(0b10110));
        assert_eq!(d, NodeId(0b01001));
        assert_eq!(h.distance(NodeId(0b10110), d), 5);
    }

    #[test]
    fn unsupported_permutations_are_rejected() {
        // Non-square transpose.
        assert!(Mesh2D::rect(3, 5)
            .supports_permutation(PermutationKind::Transpose)
            .is_err());
        // Non-power-of-two bit reversal.
        assert!(Mesh2D::square(5)
            .supports_permutation(PermutationKind::BitReversal)
            .is_err());
        // Identity bit reversal.
        assert!(Mesh2D::square(2)
            .supports_permutation(PermutationKind::BitReversal)
            .is_err());
        // Odd-dimension hypercube transpose.
        assert!(Hypercube::new(5)
            .supports_permutation(PermutationKind::Transpose)
            .is_err());
        // Butterfly rejects everything.
        assert!(Butterfly::new(3)
            .supports_permutation(PermutationKind::Transpose)
            .is_err());
        // But complements exist everywhere else, even rectangles.
        assert!(Mesh2D::rect(3, 5)
            .supports_permutation(PermutationKind::BitComplement)
            .is_ok());
    }

    #[test]
    fn permutation_sampler_is_deterministic_and_weighted() {
        let m = Mesh2D::square(4);
        let p = PermutationDest::new(&m, PermutationKind::Transpose).unwrap();
        let mut r = rng();
        let src = m.node(1, 2);
        let d = p.sample(&m, src, &mut r);
        assert_eq!(m.coords(d), (2, 1));
        let total: f64 = m.nodes().map(|x| p.weight(&m, src, x)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p.weight(&m, src, d), 1.0);
    }

    #[test]
    fn hotspot_weight_sums_to_one_and_concentrates() {
        let m = Mesh2D::square(5);
        let hot = m.node(2, 2);
        let h = HotspotDest::new(hot, 0.3);
        let src = m.node(0, 0);
        let total: f64 = m.nodes().map(|x| h.weight(&m, src, x)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(h.weight(&m, src, hot) > 0.3);
    }

    #[test]
    fn hotspot_sampling_matches_weights() {
        let m = Mesh2D::square(4);
        let hot = m.node(1, 1);
        let h = HotspotDest::new(hot, 0.4);
        let mut r = rng();
        let trials = 120_000;
        let mut counts = vec![0u32; m.num_nodes()];
        for _ in 0..trials {
            counts[h.sample(&m, m.node(0, 3), &mut r).index()] += 1;
        }
        for d in m.nodes() {
            let expect = h.weight(&m, m.node(0, 3), d);
            let got = f64::from(counts[d.index()]) / f64::from(trials);
            assert!((got - expect).abs() < 0.01, "dst {d}: {got} vs {expect}");
        }
    }

    #[test]
    fn matrix_rejects_bad_shapes_and_values() {
        assert!(MatrixDest::from_rows(&[]).is_err());
        assert!(MatrixDest::from_rows(&[vec![1.0, 0.0]]).is_err());
        assert!(MatrixDest::from_rows(&[vec![1.0, -1.0], vec![0.0, 0.0]]).is_err());
        assert!(MatrixDest::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]).is_err());
        assert!(MatrixDest::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
    }

    #[test]
    fn central_node_is_the_middle_coordinate() {
        assert_eq!(
            Mesh2D::square(8).central_node(),
            Mesh2D::square(8).node(4, 4)
        );
        assert_eq!(
            Mesh2D::rect(3, 5).central_node(),
            Mesh2D::rect(3, 5).node(1, 2)
        );
        assert_eq!(Torus2D::new(5).central_node(), Torus2D::new(5).node(2, 2));
        let kd = MeshKD::new(&[3, 4, 5]);
        assert_eq!(kd.central_node(), kd.node(&[1, 2, 2]));
    }

    #[test]
    fn matrix_rounding_never_leaks_into_zero_weight_tails() {
        // Nine equal entries then a zero: the cumulative sum of 1/9 nine
        // times carries rounding error, and the clamp must close it at
        // the last *positive* entry so index 9 (weight 0) is unreachable.
        let n = 10;
        let mut row = vec![0.1; n];
        row[n - 1] = 0.0;
        let rows = vec![row; n];
        let mx = MatrixDest::from_rows(&rows).unwrap();
        let topo = Mesh2D::rect(2, 5);
        assert_eq!(mx.weight(&topo, NodeId(0), NodeId(9)), 0.0);
        let mut r = rng();
        for _ in 0..20_000 {
            let d = mx.sample(&topo, NodeId(0), &mut r);
            assert_ne!(d, NodeId(9), "sampled a zero-weight destination");
        }
    }

    /// `support()` must reproduce `weight()` exactly at every destination:
    /// `weight(src, dst) = uniform/N + Σ matching point masses`.
    fn assert_support_matches_weights<T, D>(topo: &T, dest: &D)
    where
        T: Topology,
        D: DestSampler<T>,
    {
        for src in topo.nodes() {
            let DestSupport::Sparse { points, uniform } = dest.support(topo, src) else {
                panic!("expected sparse support at {src}");
            };
            let base = uniform / topo.num_nodes() as f64;
            for dst in topo.nodes() {
                let mass: f64 = points
                    .iter()
                    .filter(|&&(d, _)| d == dst)
                    .map(|&(_, w)| w)
                    .sum();
                let got = base + mass;
                let want = dest.weight(topo, src, dst);
                assert!(
                    (got - want).abs() < 1e-15,
                    "src {src}, dst {dst}: support gives {got}, weight gives {want}"
                );
            }
        }
    }

    #[test]
    fn sparse_supports_reproduce_the_weights() {
        let m = Mesh2D::square(4);
        for kind in PermutationKind::ALL {
            let p = PermutationDest::new(&m, kind).unwrap();
            assert_support_matches_weights(&m, &p);
            assert_support_matches_weights(&m, &GenericDest::Permutation(p));
        }
        let hot = HotspotDest::new(m.node(1, 1), 0.3);
        assert_support_matches_weights(&m, &hot);
        assert_support_matches_weights(&m, &GenericDest::Hotspot(hot));
        let rows = vec![
            vec![0.0, 2.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.25, 0.25, 0.25, 0.25],
        ];
        let mx = MatrixDest::from_rows(&rows).unwrap();
        let small = Mesh2D::square(2);
        assert_support_matches_weights(&small, &mx);
        assert_support_matches_weights(&small, &GenericDest::Matrix(mx));
        // The default implementation stays dense.
        assert_eq!(
            crate::dest::UniformDest.support(&m, m.node(0, 0)),
            DestSupport::Sparse {
                points: Vec::new(),
                uniform: 1.0
            }
        );
    }

    #[test]
    fn silent_sources_counts_all_zero_rows() {
        let rows = vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ];
        let mx = MatrixDest::from_rows(&rows).unwrap();
        assert_eq!(mx.silent_sources(), 2);
        let dense = MatrixDest::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(dense.silent_sources(), 0);
    }

    #[test]
    fn matrix_sampling_matches_row_distribution() {
        let m = Mesh2D::square(2); // 4 nodes
        let rows = vec![
            vec![0.0, 2.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0], // silent source
            vec![0.25, 0.25, 0.25, 0.25],
        ];
        let mx = MatrixDest::from_rows(&rows).unwrap();
        let src = NodeId(0);
        let total: f64 = m.nodes().map(|d| mx.weight(&m, src, d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((mx.weight(&m, src, NodeId(1)) - 0.5).abs() < 1e-12);
        let mut r = rng();
        let trials = 80_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            counts[mx.sample(&m, src, &mut r).index()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!((f64::from(counts[1]) / f64::from(trials) - 0.5).abs() < 0.01);
        // Silent sources fall back to self-packets.
        assert_eq!(mx.sample(&m, NodeId(2), &mut r), NodeId(2));
        assert_eq!(mx.weight(&m, NodeId(2), NodeId(0)), 0.0);
    }
}
