//! Variable transmission rates and the Theorem 15 optimal allocation (§5.1).
//!
//! Service rates `φ_j` are bought under a linear budget `Σ_j d_j·φ_j = D`.
//! For the Jackson model, Lagrange optimization (Kleinrock's classic
//! capacity assignment) yields
//!
//! ```text
//! φ_j = λ_j + (√(λ_j d_j) / Σ_k √(λ_k d_k)) · D*/d_j,   D* = D − Σ_k λ_k d_k,
//! ```
//!
//! with resulting mean delay `T = (Σ_e √(λ_e d_e))² / (D*·γ)` where `γ` is
//! the total external arrival rate. Because the Jackson model upper-bounds
//! the deterministic-service model (Theorem 5), these values are upper
//! bounds for the constant-transmission-time network too. Applying the
//! identity `Σ_e λ_e = γ·n̄` shows `D* > 0` exactly when `λ < 6/(n+1)` on
//! the unit-cost array — the stability improvement over `4/n` the paper
//! highlights.

/// The slack budget `D* = D − Σ_j λ_j d_j` left after giving every queue
/// exactly its arrival rate.
#[must_use]
pub fn dstar(rates: &[f64], costs: &[f64], budget: f64) -> f64 {
    budget - rates.iter().zip(costs).map(|(&l, &d)| l * d).sum::<f64>()
}

/// Theorem 15's optimal service-rate allocation.
///
/// Queues with zero arrival rate receive zero capacity (they are unused).
/// Returns `None` if the budget cannot stabilize the network (`D* ≤ 0`).
///
/// # Panics
///
/// Panics if slice lengths differ or any cost is non-positive.
#[must_use]
pub fn optimal_allocation(rates: &[f64], costs: &[f64], budget: f64) -> Option<Vec<f64>> {
    assert_eq!(rates.len(), costs.len());
    assert!(costs.iter().all(|&d| d > 0.0), "costs must be positive");
    let slack = dstar(rates, costs, budget);
    if slack <= 0.0 {
        return None;
    }
    let denom: f64 = rates.iter().zip(costs).map(|(&l, &d)| (l * d).sqrt()).sum();
    Some(
        rates
            .iter()
            .zip(costs)
            .map(|(&l, &d)| {
                if l == 0.0 {
                    0.0
                } else {
                    l + (l * d).sqrt() / denom * slack / d
                }
            })
            .collect(),
    )
}

/// Uniform allocation for comparison: the whole budget spread evenly by
/// cost, `φ_j = D / Σ_k d_k`.
#[must_use]
pub fn uniform_allocation(costs: &[f64], budget: f64) -> Vec<f64> {
    let total: f64 = costs.iter().sum();
    costs.iter().map(|_| budget / total).collect()
}

/// Mean delay of the Jackson network under the optimal allocation, in
/// closed form: `T = (Σ_e √(λ_e d_e))² / (D*·γ)`.
#[must_use]
pub fn optimal_delay(rates: &[f64], costs: &[f64], budget: f64, total_arrival: f64) -> f64 {
    let slack = dstar(rates, costs, budget);
    if slack <= 0.0 {
        return f64::INFINITY;
    }
    let s: f64 = rates.iter().zip(costs).map(|(&l, &d)| (l * d).sqrt()).sum();
    s * s / (slack * total_arrival)
}

/// The budget that reproduces the *standard* array configuration with unit
/// costs: one unit of service on each of the `4n(n−1)` edges.
#[must_use]
pub fn mesh_unit_budget(n: usize) -> f64 {
    (4 * n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jackson;
    use crate::little::mesh_total_arrival;
    use crate::load::optimal_stability_threshold;
    use meshbound_routing::rates::mesh_thm6_rates;
    use meshbound_topology::Mesh2D;

    fn mesh_setup(n: usize, lambda: f64) -> (Vec<f64>, Vec<f64>, f64) {
        let rates = mesh_thm6_rates(&Mesh2D::square(n), lambda);
        let costs = vec![1.0; rates.len()];
        let budget = mesh_unit_budget(n);
        (rates, costs, budget)
    }

    #[test]
    fn allocation_exhausts_budget() {
        let (rates, costs, budget) = mesh_setup(6, 0.3);
        let phi = optimal_allocation(&rates, &costs, budget).unwrap();
        let spent: f64 = phi.iter().zip(&costs).map(|(&p, &d)| p * d).sum();
        assert!((spent - budget).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_jackson_evaluation() {
        let n = 6;
        let lambda = 0.3;
        let (rates, costs, budget) = mesh_setup(n, lambda);
        let phi = optimal_allocation(&rates, &costs, budget).unwrap();
        let gamma = mesh_total_arrival(n, lambda);
        let direct = jackson::mean_delay(&rates, &phi, gamma);
        let closed = optimal_delay(&rates, &costs, budget, gamma);
        assert!((direct - closed).abs() < 1e-9, "{direct} vs {closed}");
    }

    #[test]
    fn optimal_beats_uniform_and_standard() {
        let n = 8;
        let lambda = 0.3; // below 4/n = 0.5
        let (rates, costs, budget) = mesh_setup(n, lambda);
        let gamma = mesh_total_arrival(n, lambda);
        let t_opt = optimal_delay(&rates, &costs, budget, gamma);
        // Standard configuration: φ = 1 everywhere.
        let t_std = jackson::mean_delay(&rates, &vec![1.0; rates.len()], gamma);
        // Uniform split of the same budget is the same thing here (4n(n−1)
        // edges, unit costs), so compare against standard only.
        let t_uni = jackson::mean_delay(&rates, &uniform_allocation(&costs, budget), gamma);
        assert!(t_opt < t_std, "{t_opt} vs {t_std}");
        assert!((t_std - t_uni).abs() < 1e-9);
    }

    #[test]
    fn lagrange_optimality_local_perturbation() {
        // Moving ε of capacity between two queues cannot reduce the Jackson
        // mean number.
        let n = 5;
        let lambda = 0.4;
        let (rates, costs, budget) = mesh_setup(n, lambda);
        let phi = optimal_allocation(&rates, &costs, budget).unwrap();
        let base = jackson::mean_number(&rates, &phi);
        let eps = 1e-4;
        for (a, b) in [(0usize, 7usize), (3, 20), (11, 40)] {
            let mut phi2 = phi.clone();
            phi2[a] += eps;
            phi2[b] -= eps;
            assert!(jackson::mean_number(&rates, &phi2) >= base - 1e-12);
            let mut phi3 = phi.clone();
            phi3[a] -= eps;
            phi3[b] += eps;
            assert!(jackson::mean_number(&rates, &phi3) >= base - 1e-12);
        }
    }

    #[test]
    fn stability_exactly_six_over_n_plus_one() {
        // D* > 0 ⟺ λ < 6/(n+1) for the unit-cost array.
        for n in [4usize, 5, 10, 11] {
            let threshold = optimal_stability_threshold(n);
            let (rates, costs, budget) = mesh_setup(n, threshold * 0.999);
            assert!(dstar(&rates, &costs, budget) > 0.0, "n={n} below threshold");
            let (rates, costs, budget) = mesh_setup(n, threshold * 1.001);
            assert!(dstar(&rates, &costs, budget) < 0.0, "n={n} above threshold");
        }
    }

    #[test]
    fn above_standard_capacity_still_stable_with_optimal_rates() {
        // λ between 4/n and 6/(n+1): standard config unstable, optimal
        // config stable with finite delay (§5.1's headline).
        let n = 10;
        let lambda = 0.5; // 4/n = 0.4 < 0.5 < 6/11 ≈ 0.545
        let (rates, costs, budget) = mesh_setup(n, lambda);
        let gamma = mesh_total_arrival(n, lambda);
        let t_std = jackson::mean_delay(&rates, &vec![1.0; rates.len()], gamma);
        assert!(t_std.is_infinite());
        let t_opt = optimal_delay(&rates, &costs, budget, gamma);
        assert!(t_opt.is_finite());
        // And the allocation indeed leaves every queue strictly stable.
        let phi = optimal_allocation(&rates, &costs, budget).unwrap();
        for (l, p) in rates.iter().zip(&phi) {
            assert!(l < p, "queue with λ={l}, φ={p}");
        }
    }

    #[test]
    fn insufficient_budget_returns_none() {
        let (rates, costs, _) = mesh_setup(4, 0.3);
        assert!(optimal_allocation(&rates, &costs, 1.0).is_none());
    }

    #[test]
    fn delay_explodes_as_dstar_vanishes() {
        let n = 6;
        let (rates, costs, budget) = mesh_setup(n, 0.3);
        let gamma = mesh_total_arrival(n, 0.3);
        let needed = budget - dstar(&rates, &costs, budget);
        let t_tight = optimal_delay(&rates, &costs, needed * 1.0001, gamma);
        let t_loose = optimal_delay(&rates, &costs, budget, gamma);
        assert!(t_tight > 100.0 * t_loose);
    }
}
