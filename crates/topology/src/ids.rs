//! Dense integer identifiers for nodes and edges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node, dense in `0..num_nodes`.
///
/// A thin `u32` newtype: topologies in this workspace stay well under 2³²
/// nodes, and the narrow index keeps per-packet state small (see the type-size
/// guidance in the workspace performance notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge, dense in `0..num_edges`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` array index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The identifier as a `usize` array index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl From<usize> for EdgeId {
    fn from(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let n = NodeId::from(17usize);
        assert_eq!(n.index(), 17);
        let e = EdgeId::from(3usize);
        assert_eq!(e.index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(2).to_string(), "v2");
        assert_eq!(EdgeId(5).to_string(), "e5");
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
    }
}
