//! Regenerates Figure 1 (Lemma 2 layering) and times the full layering
//! verification over all greedy routes.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::fig1;

fn bench(c: &mut Criterion) {
    let fig = fig1::run(5);
    println!("\n{}", fig1::render(&fig));
    assert!(fig.layered);

    let mut group = c.benchmark_group("fig1");
    for n in [5usize, 10, 15] {
        group.bench_function(format!("verify_layering_n{n}"), |b| {
            b.iter(|| {
                let f = fig1::run(n);
                assert!(f.layered);
                f
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
