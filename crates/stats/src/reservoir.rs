//! Bounded-memory reservoir sampling for quantile estimation.
//!
//! Delay distributions of long simulation runs cannot be buffered in full;
//! [`Reservoir`] keeps a uniform random subsample of fixed capacity
//! (Vitter's Algorithm R), from which any quantile is estimated by sorting
//! the sample.

use serde::{Deserialize, Serialize};

/// Uniform reservoir sample of a stream.
///
/// # Examples
///
/// ```
/// use meshbound_stats::Reservoir;
/// let mut r = Reservoir::new(1000, 42);
/// for i in 0..100_000 {
///     r.push(f64::from(i % 100));
/// }
/// let median = r.quantile(0.5).unwrap();
/// assert!((median - 49.5).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    sample: Vec<f64>,
    rng_state: u64,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity.min(4096)),
            rng_state: seed | 1,
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — adequate for reservoir index selection.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one value to the reservoir.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.capacity {
                self.sample[j as usize] = x;
            }
        }
    }

    /// Values offered so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample size (`min(seen, capacity)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the reservoir is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The retained sample, in insertion/replacement order. This is what
    /// the sharded engine re-feeds through a fresh reservoir to merge
    /// per-shard quantile samples deterministically.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.sample
    }

    /// Estimated `q`-quantile (nearest-rank on the sorted sample), or
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Some(sorted[idx])
    }

    /// Several quantiles at once (single sort).
    #[must_use]
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Option<f64>> {
        if self.sample.is_empty() {
            return qs.iter().map(|_| None).collect();
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
        qs.iter()
            .map(|&q| {
                assert!((0.0..=1.0).contains(&q));
                let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
                Some(sorted[idx])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_everything_under_capacity() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.push(f64::from(i));
        }
        assert_eq!(r.len(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
    }

    #[test]
    fn uniform_stream_quantiles() {
        let mut r = Reservoir::new(4096, 7);
        let mut state = 99u64;
        for _ in 0..500_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            r.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        assert_eq!(r.seen(), 500_000);
        for (q, expect) in [(0.25, 0.25), (0.5, 0.5), (0.95, 0.95)] {
            let got = r.quantile(q).unwrap();
            assert!((got - expect).abs() < 0.03, "q={q}: {got}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(10, seed);
            for i in 0..1000 {
                r.push(f64::from(i));
            }
            r.quantile(0.5)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn empty_quantile_is_none() {
        let r = Reservoir::new(4, 1);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.quantiles(&[0.1, 0.9]), vec![None, None]);
    }
}
