//! Canonical dimension-order routing on the hypercube (§4.5).

use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{EdgeId, Hypercube, NodeId};
use rand::rngs::SmallRng;

/// Greedy hypercube routing: differing bits are corrected in increasing
/// dimension order, so every packet "considers each dimension in some
/// canonical order and crosses an edge dimension" exactly when its
/// destination differs there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimOrder;

impl Router<Hypercube> for DimOrder {
    type State = ();

    #[inline]
    fn init_state(&self, _: &Hypercube, _: NodeId, _: NodeId, _: &mut SmallRng) {}

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        true
    }

    #[inline]
    fn next_edge(&self, topo: &Hypercube, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
        topo.next_differing_dim(cur, dst)
            .map(|i| topo.edge_across(cur, i))
    }

    #[inline]
    fn remaining_hops(&self, topo: &Hypercube, cur: NodeId, dst: NodeId, _: ()) -> usize {
        topo.distance(cur, dst)
    }
}

impl ObliviousRouter<Hypercube> for DimOrder {
    fn paths(&self, topo: &Hypercube, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        vec![(1.0, self.route(topo, src, dst, ()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_corrects_bits_in_order() {
        let h = Hypercube::new(4);
        let route = DimOrder.route(&h, NodeId(0b0000), NodeId(0b1101), ());
        let dims: Vec<usize> = route.iter().map(|&e| h.edge_dimension(e)).collect();
        assert_eq!(dims, vec![0, 2, 3]);
    }

    #[test]
    fn route_length_is_hamming_distance() {
        let h = Hypercube::new(5);
        for a in [0u32, 7, 21, 31] {
            for b in [0u32, 1, 30, 31] {
                let route = DimOrder.route(&h, NodeId(a), NodeId(b), ());
                assert_eq!(route.len(), (a ^ b).count_ones() as usize);
            }
        }
    }

    #[test]
    fn layered_by_dimension() {
        // Dimension-order routing crosses edges with strictly increasing
        // dimension — the hypercube analogue of Lemma 2.
        let h = Hypercube::new(6);
        let route = DimOrder.route(&h, NodeId(0), NodeId(0b111111), ());
        let dims: Vec<usize> = route.iter().map(|&e| h.edge_dimension(e)).collect();
        for w in dims.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
