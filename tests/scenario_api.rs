//! Cross-topology invariants of the unified `Scenario` API: every
//! `TopologySpec` runs end-to-end through `Scenario::run` and
//! `run_replicated`, light-load delays approach the mean greedy distance,
//! `BoundsReport::compute_for` stays ordered on every topology, and
//! `Scenario::parse` round-trips.

use meshbound::{BoundsReport, Load, Scenario, TopologySpec, TrafficSpec};

/// One light-load scenario per topology family (and the non-uniform
/// destination variants), sized to finish in seconds.
fn light_load_scenarios() -> Vec<Scenario> {
    let light = |sc: Scenario| {
        sc.load(Load::Utilization(0.05))
            .horizon(8_000.0)
            .warmup(400.0)
            .seed(2024)
    };
    vec![
        light(Scenario::mesh(5)),
        light(Scenario::mesh_rect(3, 6)),
        light(Scenario::torus(6)),
        light(Scenario::hypercube(5)),
        light(Scenario::hypercube(5).traffic(TrafficSpec::bernoulli(0.3))),
        light(Scenario::butterfly(4)),
        light(Scenario::mesh_kd(&[3, 3, 3])),
    ]
}

#[test]
fn light_load_delay_approaches_mean_distance_on_every_topology() {
    // At vanishing load every hop costs one unit of transmission time, so
    // T → n̄ from above; queueing can only add delay, so the mean distance
    // is an ε-floor.
    for sc in light_load_scenarios() {
        let res = sc.run();
        let nbar = sc.mean_distance();
        assert!(res.completed > 100, "{}: too few packets", sc.label());
        assert!(
            res.avg_delay >= nbar - 0.05,
            "{}: delay {} below mean distance {}",
            sc.label(),
            res.avg_delay,
            nbar
        );
        assert!(
            res.avg_delay <= nbar * 1.25 + 0.5,
            "{}: light-load delay {} far above mean distance {}",
            sc.label(),
            res.avg_delay,
            nbar
        );
    }
}

#[test]
fn bounds_report_is_ordered_on_every_topology() {
    for sc in light_load_scenarios() {
        let r = BoundsReport::compute_for(&sc);
        assert!(
            r.lower_best <= r.upper,
            "{}: lower {} above upper {}",
            r.label,
            r.lower_best,
            r.upper
        );
        assert!(
            r.lower_best.is_finite() && r.lower_best > 0.0,
            "{}",
            r.label
        );
        assert!(r.lower_best >= r.lower_trivial, "{}", r.label);
        assert!(r.est_paper <= r.est_md1 + 1e-12, "{}", r.label);
        // The torus upper bound is §6's open problem; everywhere else the
        // Theorem 5 product form is finite at 5% utilization.
        if matches!(sc.topology, TopologySpec::Torus { .. }) {
            assert!(r.upper.is_infinite(), "{}", r.label);
        } else {
            assert!(r.upper.is_finite(), "{}", r.label);
        }
    }
}

#[test]
fn replication_works_on_every_topology() {
    for sc in light_load_scenarios() {
        let sc = sc.horizon(1_000.0).warmup(100.0);
        let rep = sc.run_replicated(3);
        assert_eq!(rep.runs.len(), 3, "{}", sc.label());
        // Derived seeds must differ (the 64-bit golden-ratio derivation).
        assert!(
            rep.runs[0].avg_delay.to_bits() != rep.runs[1].avg_delay.to_bits()
                || rep.runs[1].avg_delay.to_bits() != rep.runs[2].avg_delay.to_bits(),
            "{}: replications identical",
            sc.label()
        );
        // The aggregate mean lies inside the per-run envelope.
        let lo = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::INFINITY, f64::min);
        let hi = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            rep.delay.mean() >= lo && rep.delay.mean() <= hi,
            "{}",
            sc.label()
        );
    }
}

#[test]
fn simulated_delay_within_bounds_at_moderate_load() {
    // The acceptance sweep: 50% utilization on each topology with a finite
    // upper bound; the simulation must land between the bounds.
    let scenarios = [
        Scenario::mesh(5),
        Scenario::hypercube(5),
        Scenario::butterfly(4),
        Scenario::mesh_kd(&[3, 3]),
    ];
    for sc in scenarios {
        let sc = sc
            .load(Load::Utilization(0.5))
            .horizon(10_000.0)
            .warmup(1_000.0)
            .seed(11);
        let r = BoundsReport::compute_for(&sc);
        let t = sc.run().avg_delay;
        assert!(
            r.lower_best <= t * 1.1,
            "{}: lower {} vs sim {t}",
            r.label,
            r.lower_best
        );
        assert!(
            t <= r.upper * 1.1,
            "{}: sim {t} vs upper {}",
            r.label,
            r.upper
        );
    }
}

#[test]
fn parse_round_trips_every_topology() {
    for sc in light_load_scenarios() {
        let spec = sc.spec_string();
        let parsed = Scenario::parse(&spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
        assert_eq!(parsed, sc, "round trip failed for `{spec}`");
    }
}

#[test]
fn parse_accepts_full_specs_and_rejects_garbage() {
    let sc = Scenario::parse("torus:8,util=0.9,horizon=5000,warmup=500,seed=3").unwrap();
    assert_eq!(sc.topology, TopologySpec::Torus { n: 8 });
    assert!((sc.peak_utilization() - 0.9).abs() < 1e-9);

    let sc = Scenario::parse("mesh:6,router=randomized,rho=0.5,service=exp").unwrap();
    assert_eq!(sc.router, meshbound::RouterSpec::Randomized);

    for bad in [
        "",
        "mesh",                                        // missing size
        "hexagon:7",                                   // unknown topology
        "mesh:1",                                      // too small
        "torus:2",                                     // too small
        "mesh:4,router=randomized,dest=bernoulli:0.5", // dest/topology mismatch
        "butterfly:3,dest=nearby:0.5",                 // dest/topology mismatch
        "mesh:4,rho=-0.2",                             // non-positive load
        "mesh:4,horizon=0",                            // degenerate horizon
        "mesh:4,warmup=99999",                         // warmup beyond horizon
        "mesh:4,turbo=yes",                            // unknown key
        "mesh:4,slot=abc",                             // malformed number
        "torus:8x9",                                   // torus takes a single size
        "hypercube:4x4",                               // hypercube takes a single size
        "hypercube:4,dest=bernoulli:0,util=0.5",       // p = 0 ⇒ λ = ∞
        "mesh:8,rho=0.9,util=0.2",                     // conflicting load keys
    ] {
        assert!(Scenario::parse(bad).is_err(), "`{bad}` should be rejected");
    }
}

#[test]
fn every_boolean_knob_round_trips() {
    let sc = Scenario::mesh(4)
        .load(Load::Lambda(0.1))
        .include_self_packets(false)
        .track_saturated(true)
        .delay_quantiles(true)
        .track_edge_queues(true);
    let parsed = Scenario::parse(&sc.spec_string()).unwrap();
    assert_eq!(parsed, sc);
    assert!(parsed.track_edge_queues);
}
