//! Comparing interconnect topologies at matched edge utilization.
//!
//! ```text
//! cargo run --release --example topology_comparison
//! ```
//!
//! The paper's machinery covers the array (its subject), the torus (§6),
//! the hypercube and the butterfly (§4.5), and higher-dimensional meshes
//! (§5.2). With the unified `Scenario` API the whole comparison is one
//! loop: every topology is named the same way, `Load::Utilization` puts
//! every network at the same 70% peak edge utilization, and
//! `BoundsReport::compute_for` supplies whatever closed-form bound the
//! paper derives for it — the kind of apples-to-apples comparison an
//! interconnect designer would run.

use meshbound::{BoundsReport, Load, Scenario, TrafficSpec};
use meshbound_repro::banner;

fn main() {
    let util = 0.7;

    banner(&format!("All topologies at peak edge utilization {util}"));
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "topology", "nodes", "mean dist", "lower", "T (sim)", "T upper"
    );

    let scenarios = [
        Scenario::mesh(8),
        Scenario::torus(8),
        Scenario::hypercube(6).traffic(TrafficSpec::bernoulli(0.5)),
        Scenario::butterfly(6),
        Scenario::mesh_kd(&[4, 4, 4]),
    ];
    for (i, sc) in scenarios.into_iter().enumerate() {
        let sc = sc
            .load(Load::Utilization(util))
            .horizon(20_000.0)
            .warmup(2_000.0)
            .seed(1 + i as u64);
        let report = BoundsReport::compute_for(&sc);
        let res = sc.run();
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10}",
            report.label,
            report.nodes,
            report.mean_distance,
            report.lower_best,
            res.avg_delay,
            if report.upper.is_finite() {
                format!("{:.3}", report.upper)
            } else {
                "open (§6)".into()
            }
        );
    }

    banner("Reading");
    println!("The array pays for its asymmetry: central cuts saturate first (Figure 2),");
    println!("so at matched peak utilization its delay exceeds the torus's, whose wraparound");
    println!("halves distances and spreads load evenly. The hypercube and butterfly are");
    println!("perfectly symmetric — every edge is saturated simultaneously (§4.6 note).");
    println!("The torus upper bound stays open (§6): no layering exists, so Theorem 1");
    println!("does not apply — only its Theorem 10 lower bound is printed.");
}
