//! Hypercube bounds (§4.5).
//!
//! A `d`-dimensional hypercube routes with canonical dimension order;
//! destinations differ in each bit with probability `p` (uniform when
//! `p = 1/2`). Every edge then carries rate `λ·p`, the network is layered by
//! dimension and Markovian, so the Theorem 5 upper bound and the Theorem
//! 10/12 lower bounds all apply. The maximum expected remaining distance is
//! attained by a packet queued at a first-dimension edge:
//! `d̄ = 1 + p(d−1)`, so the high-load gap between the bounds is
//! `2(dp + 1 − p)` — strictly better than the previous `2d` for all
//! `p ∈ (0, 1)`.

use crate::single::{md1_mean_number, mm1_mean_number};

/// Mean route length: `d·p` (each of `d` bits differs with probability `p`).
#[must_use]
pub fn mean_distance(d: usize, p: f64) -> f64 {
    d as f64 * p
}

/// Product-form upper bound on the mean delay: all `d·2^d` edges carry
/// `λp`, so `T ≤ d·p/(1 − λp)`.
#[must_use]
pub fn upper_bound_delay(d: usize, lambda: f64, p: f64) -> f64 {
    let le = lambda * p;
    if le >= 1.0 {
        f64::INFINITY
    } else {
        d as f64 * mm1_mean_number(le, 1.0) / lambda
    }
}

/// Maximum expected remaining distance `d̄ = 1 + p(d−1)` (a packet queued on
/// a dimension-0 edge crosses each later dimension with probability `p`).
#[must_use]
pub fn dbar(d: usize, p: f64) -> f64 {
    1.0 + p * (d as f64 - 1.0)
}

/// Theorem 12 lower bound: `T ≥ d·N_{M/D/1}(λp) / (d̄·λ)`.
#[must_use]
pub fn thm12_lower(d: usize, lambda: f64, p: f64) -> f64 {
    d as f64 * md1_mean_number(lambda * p) / (dbar(d, p) * lambda)
}

/// Theorem 10 lower bound with the worst-case `d` services per packet.
#[must_use]
pub fn thm10_lower(d: usize, lambda: f64, p: f64) -> f64 {
    d as f64 * md1_mean_number(lambda * p) / (d as f64 * lambda)
}

/// High-load bound gap of the new technique: `2(dp + 1 − p) = 2·d̄`.
#[must_use]
pub fn new_gap(d: usize, p: f64) -> f64 {
    2.0 * (d as f64 * p + 1.0 - p)
}

/// High-load gap of the previous (Stamoulis–Tsitsiklis) bounds: `2d`.
#[must_use]
pub fn previous_gap(d: usize) -> f64 {
    2.0 * d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_gap_beats_previous_for_all_p() {
        for d in [3usize, 6, 10] {
            for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
                assert!(new_gap(d, p) < previous_gap(d), "d={d}, p={p}");
            }
        }
    }

    #[test]
    fn uniform_case_gap_is_d_plus_one() {
        // p = 1/2: gap = 2(d/2 + 1/2) = d + 1.
        assert!((new_gap(8, 0.5) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn small_p_gap_approaches_two() {
        assert!((new_gap(50, 1e-9) - 2.0).abs() < 1e-6);
        // And it stays bounded by a constant for p = O(1/d).
        let d = 1000;
        assert!(new_gap(d, 1.0 / d as f64) < 4.0);
    }

    #[test]
    fn ratio_converges_to_new_gap_at_high_load() {
        let d = 8;
        let p = 0.5;
        // Drive edge utilization λp → 1.
        let lambda = 0.99999 / p;
        let ratio = upper_bound_delay(d, lambda, p) / thm12_lower(d, lambda, p);
        assert!((ratio - new_gap(d, p)).abs() < 0.01, "ratio {ratio}");
        let ratio10 = upper_bound_delay(d, lambda, p) / thm10_lower(d, lambda, p);
        assert!((ratio10 - previous_gap(d)).abs() < 0.01);
    }

    #[test]
    fn upper_bound_light_load_is_mean_distance() {
        let d = 6;
        let p = 0.3;
        let t = upper_bound_delay(d, 1e-9, p);
        assert!((t - mean_distance(d, p)).abs() < 1e-6);
    }

    #[test]
    fn bounds_ordered() {
        let d = 5;
        for p in [0.2, 0.5, 0.8] {
            for lambda in [0.1, 0.5, 0.9] {
                if lambda * p < 1.0 {
                    let lo10 = thm10_lower(d, lambda, p);
                    let lo12 = thm12_lower(d, lambda, p);
                    let hi = upper_bound_delay(d, lambda, p);
                    assert!(lo10 <= lo12 && lo12 <= hi, "d={d}, p={p}, λ={lambda}");
                }
            }
        }
    }
}
