//! Table II: the remaining-work ratio `r = E[R]/E[N]`.
//!
//! `R(t)` sums, over all packets in the system, the number of services they
//! still need; `N(t)` counts the packets. The paper measures
//! `r = E[R]/E[N]` by simulation (Table II) and observes that `r` depends
//! only weakly on ρ and satisfies `r/n̄₂ < 0.7` — evidence that the
//! Theorem 12 constant `d̄` is pessimistic.

use super::{Scale, TextTable};
use crate::sweep::{run_cells, Jobs};
use meshbound_queueing::load::Load;
use meshbound_queueing::remaining::light_load_r;
use meshbound_sim::Scenario;
use serde::{Deserialize, Serialize};

/// The paper's printed Table II: `(n, ρ, r)`. The `n̄` column of the paper
/// (3.333, 6.667, 10, 13.333) is `n̄₂ = 2n/3`.
pub const PRINTED: &[(usize, f64, f64)] = &[
    (5, 0.2, 2.568),
    (5, 0.5, 2.574),
    (5, 0.8, 2.600),
    (5, 0.9, 2.610),
    (5, 0.99, 2.613),
    (10, 0.2, 4.665),
    (10, 0.5, 4.694),
    (10, 0.8, 4.746),
    (10, 0.9, 4.775),
    (10, 0.99, 4.776),
    (15, 0.2, 6.755),
    (15, 0.5, 6.796),
    (15, 0.8, 6.875),
    (15, 0.9, 6.913),
    (15, 0.99, 6.924),
    (20, 0.2, 8.841),
    (20, 0.5, 8.887),
    (20, 0.8, 8.982),
    (20, 0.9, 9.041),
    (20, 0.99, 9.029),
];

/// One reproduced cell of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Array side.
    pub n: usize,
    /// Table-ρ load.
    pub rho: f64,
    /// `n̄₂ = 2n/3` (the paper's second column).
    pub nbar2: f64,
    /// Simulated `r = E[R]/E[N]`.
    pub r_sim: f64,
    /// Light-load closed form `(E[D²]+E[D])/(2E[D])`.
    pub r_light: f64,
    /// Paper's printed `r`.
    pub printed_r: f64,
}

/// The Table II scenario grid at `scale` (historical per-cell seeds).
#[must_use]
pub fn cells(scale: &Scale) -> Vec<Scenario> {
    PRINTED
        .iter()
        .map(|&(n, rho, _)| {
            Scenario::mesh(n)
                .load(Load::TableRho(rho))
                .horizon(scale.horizon(rho))
                .warmup(scale.warmup(rho))
                .seed(scale.seed ^ 0xBEE5 ^ ((n as u64) << 24) ^ ((rho * 1000.0) as u64))
        })
        .collect()
}

/// Runs the Table II grid through the sweep engine (cells in parallel).
#[must_use]
pub fn run(scale: &Scale) -> Vec<Table2Row> {
    let report = run_cells("table2", cells(scale), scale.reps, Jobs::Parallel);
    report
        .cells
        .iter()
        .zip(PRINTED)
        .map(|(cell, &(n, rho, printed))| Table2Row {
            n,
            rho,
            nbar2: 2.0 * n as f64 / 3.0,
            r_sim: cell.r_ratio,
            r_light: light_load_r(n),
            printed_r: printed,
        })
        .collect()
}

/// Renders the reproduced Table II.
#[must_use]
pub fn render(rows: &[Table2Row]) -> String {
    let mut t = TextTable::new(&[
        "n",
        "n̄₂",
        "rho",
        "r(Sim)",
        "r(light-load)",
        "paper r",
        "r/n̄₂",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            format!("{:.3}", r.nbar2),
            format!("{:.2}", r.rho),
            format!("{:.3}", r.r_sim),
            format!("{:.3}", r.r_light),
            format!("{:.3}", r.printed_r),
            format!("{:.3}", r.r_sim / r.nbar2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_closed_form_matches_printed_low_rho() {
        for &(n, rho, printed) in PRINTED {
            if rho == 0.2 {
                let r0 = light_load_r(n);
                assert!(
                    (r0 - printed).abs() / printed < 0.012,
                    "n={n}: {r0} vs {printed}"
                );
            }
        }
    }

    #[test]
    fn printed_r_increases_weakly_with_rho() {
        // The paper's own data: r varies by < 3% across the whole ρ range.
        for n in [5usize, 10, 15, 20] {
            let rs: Vec<f64> = PRINTED
                .iter()
                .filter(|&&(nn, _, _)| nn == n)
                .map(|&(_, _, r)| r)
                .collect();
            let spread = (rs.iter().cloned().fold(f64::MIN, f64::max)
                - rs.iter().cloned().fold(f64::MAX, f64::min))
                / rs[0];
            assert!(spread < 0.03, "n={n}: spread {spread}");
        }
    }

    #[test]
    fn quick_sim_reproduces_r_for_small_n() {
        let scale = Scale::quick();
        let rep = Scenario::mesh(5)
            .load(Load::TableRho(0.5))
            .horizon(6_000.0)
            .warmup(600.0)
            .seed(77)
            .run_replicated(scale.reps);
        // Printed value 2.574; allow simulation noise.
        assert!(
            (rep.r_ratio.mean() - 2.574).abs() < 0.1,
            "r = {}",
            rep.r_ratio.mean()
        );
    }
}
