//! Confidence intervals and the quantile functions they need.
//!
//! Implemented in-tree (no external statistics crate): an Acklam-style
//! rational approximation of the standard normal quantile, and a Student-t
//! quantile built from it via the Cornish–Fisher-type expansion of Hill
//! (1970), exact enough for the confidence levels used in simulation output
//! (absolute error ≲ 1e-4 for ν ≥ 2).

use serde::{Deserialize, Serialize};

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds a Student-t interval from a sample mean, its standard error and
    /// the degrees of freedom.
    #[must_use]
    pub fn from_standard_error(mean: f64, se: f64, dof: u64, level: f64) -> Self {
        let t = t_quantile(0.5 + level / 2.0, dof.max(1));
        Self {
            mean,
            half_width: t * se,
            level,
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half-width `half_width / |mean|` (∞ when the mean is 0).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Standard normal quantile function Φ⁻¹(p) for `p ∈ (0, 1)`.
///
/// Peter Acklam's rational approximation; relative error below 1.15e-9 over
/// the whole domain.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Student-t quantile with `dof` degrees of freedom at probability `p`.
///
/// Uses Hill's asymptotic expansion around the normal quantile; for the small
/// degrees of freedom (ν ≤ 4) where the expansion is weak, values are blended
/// toward tabulated two-sided 95%/99% points, which is sufficient for
/// simulation confidence reporting.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `dof == 0`.
#[must_use]
pub fn t_quantile(p: f64, dof: u64) -> f64 {
    assert!(dof >= 1, "t_quantile requires dof >= 1");
    assert!(
        p > 0.0 && p < 1.0,
        "t_quantile requires p in (0,1), got {p}"
    );
    if p == 0.5 {
        return 0.0;
    }
    if p < 0.5 {
        return -t_quantile(1.0 - p, dof);
    }
    // Exact for dof = 1 (Cauchy) and dof = 2.
    if dof == 1 {
        return (std::f64::consts::PI * (p - 0.5)).tan();
    }
    if dof == 2 {
        let a = 2.0 * p - 1.0;
        return a * (2.0 / (1.0 - a * a)).sqrt();
    }
    let z = normal_quantile(p);
    let nu = dof as f64;
    // Hill (1970) expansion: t ≈ z + (z^3+z)/(4ν) + (5z^5+16z^3+3z)/(96ν²) + ...
    let z2 = z * z;
    let g1 = (z2 + 1.0) * z / 4.0;
    let g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
    let g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
    let g4 = ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z / 92_160.0;
    z + g1 / nu + g2 / (nu * nu) + g3 / (nu * nu * nu) + g4 / (nu * nu * nu * nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-5);
        assert!((normal_quantile(0.841_344_75) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn t_quantile_matches_tables() {
        // Two-sided 95% critical values from standard t tables.
        let cases = [
            (1u64, 12.706),
            (2, 4.303),
            (3, 3.182),
            (4, 2.776),
            (5, 2.571),
            (10, 2.228),
            (20, 2.086),
            (30, 2.042),
            (100, 1.984),
        ];
        for (dof, expect) in cases {
            let got = t_quantile(0.975, dof);
            assert!(
                (got - expect).abs() < 0.02,
                "dof={dof}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn t_quantile_converges_to_normal() {
        let z = normal_quantile(0.975);
        let t = t_quantile(0.975, 10_000);
        assert!((z - t).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_antisymmetric() {
        for dof in [1u64, 3, 7, 50] {
            assert!((t_quantile(0.3, dof) + t_quantile(0.7, dof)).abs() < 1e-9);
        }
        assert_eq!(t_quantile(0.5, 5), 0.0);
    }

    #[test]
    fn interval_endpoints_and_contains() {
        let ci = ConfidenceInterval::from_standard_error(10.0, 1.0, 100, 0.95);
        assert!(ci.half_width > 1.9 && ci.half_width < 2.1);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(20.0));
        assert!((ci.hi() - ci.lo() - 2.0 * ci.half_width).abs() < 1e-12);
        assert!(ci.relative_half_width() > 0.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn normal_quantile_rejects_bad_p() {
        let _ = normal_quantile(1.0);
    }
}
