//! Butterfly bounds (§4.5).
//!
//! In a `d`-level butterfly with Poisson inputs at the `2^d` level-0 nodes
//! and uniform outputs, every packet crosses exactly `d` edges and every
//! edge carries rate `λ/2`. Theorem 10 (with exactly `d` services per
//! packet) gives a lower bound within `2d` of the product-form upper bound
//! in heavy traffic — matching Stamoulis and Tsitsiklis, as the paper notes.

use crate::single::{md1_mean_number, mm1_mean_number};

/// Product-form upper bound on the mean delay:
/// `T ≤ d·(λ/2)/(1−λ/2)/λ = d/(1−λ/2) · … ` — concretely
/// `2d·N_{M/M/1}(λ/2)/λ` per input node.
#[must_use]
pub fn upper_bound_delay(d: usize, lambda: f64) -> f64 {
    let le = lambda / 2.0;
    if le >= 1.0 {
        f64::INFINITY
    } else {
        2.0 * d as f64 * mm1_mean_number(le, 1.0) / lambda
    }
}

/// Theorem 10 lower bound: every packet needs exactly `d` services, so
/// `T ≥ 2d·N_{M/D/1}(λ/2)/(d·λ) = 2·N_{M/D/1}(λ/2)/λ`.
#[must_use]
pub fn thm10_lower(d: usize, lambda: f64) -> f64 {
    let _ = d;
    2.0 * md1_mean_number(lambda / 2.0) / lambda
}

/// High-load gap between the bounds: `2d`.
#[must_use]
pub fn gap(d: usize) -> f64 {
    2.0 * d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_converges_to_2d() {
        let d = 6;
        let lambda = 2.0 * 0.99999;
        let ratio = upper_bound_delay(d, lambda) / thm10_lower(d, lambda);
        assert!((ratio - gap(d)).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn light_load_delay_is_d() {
        let d = 5;
        assert!((upper_bound_delay(d, 1e-9) - d as f64).abs() < 1e-6);
    }

    #[test]
    fn lower_below_upper_everywhere() {
        for d in [2usize, 4, 8] {
            for lambda in [0.1, 1.0, 1.9] {
                assert!(thm10_lower(d, lambda) <= upper_bound_delay(d, lambda));
            }
        }
    }

    #[test]
    fn saturation_at_lambda_two() {
        assert!(upper_bound_delay(4, 2.0).is_infinite());
        assert!(upper_bound_delay(4, 1.99).is_finite());
    }
}
