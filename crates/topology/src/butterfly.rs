//! The `d`-level butterfly network (§4.5).
//!
//! Packets enter at level-0 nodes and traverse exactly `d` edges to a
//! level-`d` output; the route between an input row and an output row is
//! unique, which is why the paper's Theorem 10 bound (with `d` services per
//! packet) applies directly.

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// A butterfly with `d` levels of edges and `d+1` levels of `2^d` nodes.
///
/// Node `(level l, row w)` has id `l·2^d + w`. Each node at level `l < d`
/// has two outgoing edges: *straight* to `(l+1, w)` and *cross* to
/// `(l+1, w ⊕ 2^l)`; level-`l` edges therefore decide bit `l` of the output
/// row. Edge ids: `l·2^{d+1} + 2w + s` with `s = 0` straight, `s = 1` cross.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Butterfly {
    levels: u32,
}

impl Butterfly {
    /// Creates a butterfly with `d` levels of edges.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ d ≤ 20`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!((1..=20).contains(&d), "butterfly level count out of range");
        Self { levels: d as u32 }
    }

    /// Number of edge levels `d`.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels as usize
    }

    /// Rows per level, `2^d`.
    #[must_use]
    pub fn rows(&self) -> usize {
        1usize << self.levels
    }

    /// Node id of `(level, row)`.
    ///
    /// # Panics
    ///
    /// Debug-panics when out of range.
    #[inline]
    #[must_use]
    pub fn node(&self, level: usize, row: usize) -> NodeId {
        debug_assert!(level <= self.levels());
        debug_assert!(row < self.rows());
        NodeId((level * self.rows() + row) as u32)
    }

    /// `(level, row)` of a node id.
    #[inline]
    #[must_use]
    pub fn coords(&self, v: NodeId) -> (usize, usize) {
        (v.index() / self.rows(), v.index() % self.rows())
    }

    /// The edge out of `(level, row)`; `cross` selects the bit-flipping edge.
    #[inline]
    #[must_use]
    pub fn edge_from(&self, level: usize, row: usize, cross: bool) -> EdgeId {
        debug_assert!(level < self.levels());
        EdgeId((level * 2 * self.rows() + 2 * row + usize::from(cross)) as u32)
    }

    /// Level of an edge (the bit of the output row it decides).
    #[inline]
    #[must_use]
    pub fn edge_level(&self, e: EdgeId) -> usize {
        e.index() / (2 * self.rows())
    }

    /// Next edge on the unique route from node `v` to output row
    /// `out_row`, or `None` if `v` is already at the output level.
    #[inline]
    #[must_use]
    pub fn step_toward(&self, v: NodeId, out_row: usize) -> Option<EdgeId> {
        let (l, w) = self.coords(v);
        if l >= self.levels() {
            return None;
        }
        let want = (out_row >> l) & 1;
        let have = (w >> l) & 1;
        Some(self.edge_from(l, w, want != have))
    }
}

impl Topology for Butterfly {
    fn num_nodes(&self) -> usize {
        (self.levels() + 1) * self.rows()
    }

    fn num_edges(&self) -> usize {
        self.levels() * 2 * self.rows()
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        let per_level = 2 * self.rows();
        let l = e.index() / per_level;
        let w = (e.index() % per_level) / 2;
        self.node(l, w)
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let per_level = 2 * self.rows();
        let l = e.index() / per_level;
        let w = (e.index() % per_level) / 2;
        let cross = e.index() % 2 == 1;
        let w2 = if cross { w ^ (1 << l) } else { w };
        self.node(l + 1, w2)
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        let (l, w) = self.coords(v);
        if l < self.levels() {
            out.push(self.edge_from(l, w, false));
            out.push(self.edge_from(l, w, true));
        }
    }

    fn label(&self) -> String {
        format!("butterfly d={}", self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts() {
        let b = Butterfly::new(3);
        assert_eq!(b.num_nodes(), 4 * 8);
        assert_eq!(b.num_edges(), 3 * 16);
    }

    #[test]
    fn output_nodes_have_no_out_edges() {
        let b = Butterfly::new(2);
        for w in 0..b.rows() {
            assert!(b.out_edges(b.node(2, w)).is_empty());
        }
        for w in 0..b.rows() {
            assert_eq!(b.out_edges(b.node(0, w)).len(), 2);
        }
    }

    #[test]
    fn route_reaches_requested_output() {
        let b = Butterfly::new(4);
        for start in 0..b.rows() {
            for out in 0..b.rows() {
                let mut v = b.node(0, start);
                let mut hops = 0;
                while let Some(e) = b.step_toward(v, out) {
                    v = b.edge_target(e);
                    hops += 1;
                    assert!(hops <= 4);
                }
                assert_eq!(b.coords(v), (4, out));
                assert_eq!(hops, 4, "all packets cross exactly d edges");
            }
        }
    }

    #[test]
    fn edge_endpoints_adjacent_levels() {
        let b = Butterfly::new(3);
        for e in b.edges() {
            let (ls, _) = b.coords(b.edge_source(e));
            let (lt, _) = b.coords(b.edge_target(e));
            assert_eq!(lt, ls + 1);
            assert_eq!(b.edge_level(e), ls);
        }
    }

    proptest! {
        #[test]
        fn prop_unique_route_is_deterministic(d in 1usize..6, s in 0usize..32, o in 0usize..32) {
            let b = Butterfly::new(d);
            let s = s % b.rows();
            let o = o % b.rows();
            let mut v = b.node(0, s);
            let mut path = Vec::new();
            while let Some(e) = b.step_toward(v, o) {
                path.push(e);
                v = b.edge_target(e);
            }
            prop_assert_eq!(path.len(), d);
            // Rerunning gives the identical path (routing is deterministic).
            let mut v2 = b.node(0, s);
            for &e in &path {
                let e2 = b.step_toward(v2, o).unwrap();
                prop_assert_eq!(e2, e);
                v2 = b.edge_target(e2);
            }
        }
    }
}
