//! Precomputed next-hop route tables.
//!
//! Greedy routing is Markovian (Corollary 4): the next hop is a pure
//! function of `(current node, destination)` for every deterministic router
//! in this crate. A [`RouteTable`] materializes that function — plus route
//! lengths and edge targets — into flat arrays, turning the simulator's
//! per-hop router dispatch, `route_len` and saturated-hop counting into
//! single array reads on the hot path.
//!
//! Tables are only valid for routers whose
//! [`Router::is_route_deterministic`] contract holds (per-packet state and
//! RNG never influence the path); randomized routers keep the on-the-fly
//! path.

use crate::router::Router;
use meshbound_topology::{EdgeId, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Sentinel marking "no next edge" (the packet is at its destination).
const NO_EDGE: u32 = 0xFFFF;

/// Flat next-hop, distance and edge-target tables for one
/// `(topology, router)` pair.
///
/// Storage is one packed `u32` per `(node, destination)` pair — next edge
/// in the low 16 bits, route length in the high 16 — plus one `u32` per
/// edge, so a 20×20 mesh's full table is ~640 KiB and an injection fetches
/// next hop *and* distance with a single load. Build cost is `O(nodes²)`
/// router queries, done once per simulation run. The 16-bit packing caps
/// eligible topologies at 65534 edges (`RouteTable::fits` checks; the
/// simulator's node gate stays far below it).
///
/// # Examples
///
/// ```
/// use meshbound_routing::{GreedyXY, RouteTable, Router};
/// use meshbound_topology::{Mesh2D, Topology};
///
/// let mesh = Mesh2D::square(4);
/// let table = RouteTable::build(&mesh, &GreedyXY);
/// let (src, dst) = (mesh.node(3, 0), mesh.node(0, 2));
/// assert_eq!(table.dist(src, dst), mesh.manhattan(src, dst));
///
/// // The table replays exactly the router's route, one read per hop.
/// let mut cur = src;
/// let mut hops = 0;
/// while cur != dst {
///     let e = table.next_edge(cur, dst);
///     assert_eq!(Some(e), GreedyXY.next_edge(&mesh, cur, dst, ()));
///     cur = table.edge_target(e);
///     hops += 1;
/// }
/// assert_eq!(hops, table.dist(src, dst));
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    /// `cells[cur * nodes + dst]`: next edge id in the low 16 bits
    /// (`NO_EDGE` when `cur == dst` or the pair is invalid), route length
    /// in hops in the high 16 bits.
    cells: Vec<u32>,
    /// `edge_target[edge]`: the node an edge leads to.
    edge_target: Vec<u32>,
}

impl RouteTable {
    /// Whether a topology's identifiers fit the packed 16-bit layout:
    /// fewer than 65535 edges and every route shorter than 65536 hops
    /// (route length is bounded by the edge count).
    #[must_use]
    pub fn fits<T: Topology>(topo: &T) -> bool {
        topo.num_edges() < NO_EDGE as usize
    }

    /// Builds the table by querying `router` for every
    /// `(node, destination)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `router` does not declare
    /// [`Router::is_route_deterministic`] — a state- or RNG-dependent
    /// route cannot be tabulated — or if the topology fails
    /// [`RouteTable::fits`].
    #[must_use]
    pub fn build<T, R>(topo: &T, router: &R) -> Self
    where
        T: Topology,
        R: Router<T>,
    {
        assert!(
            router.is_route_deterministic(),
            "route tables require a deterministic router"
        );
        assert!(Self::fits(topo), "topology exceeds the 16-bit table layout");
        let nodes = topo.num_nodes();
        // Fill by memoized route walking: one `next_edge` query per cell,
        // distances by dynamic programming on the unwind (each cell is one
        // hop more than its successor), so the build never calls
        // `remaining_hops`. `UNKNOWN` marks unfilled cells; it cannot
        // collide with a real cell, whose distance is below the edge count
        // and therefore below 0xFFFF.
        const UNKNOWN: u32 = u32::MAX;
        let mut cells = vec![UNKNOWN; nodes * nodes];
        // The deterministic contract guarantees the state (and this
        // throwaway RNG) cannot influence the route.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stack: Vec<(usize, u32)> = Vec::new();
        for dst in topo.nodes() {
            // Partial routers (the butterfly routes only to output nodes)
            // leave invalid destination columns at the `NO_EDGE` sentinel;
            // the simulator never draws such destinations.
            if !router.routes_to(topo, dst) {
                continue;
            }
            let di = dst.index();
            cells[di * nodes + di] = NO_EDGE; // distance 0, no next edge
            for src in topo.nodes() {
                let mut cur = src;
                while cells[cur.index() * nodes + di] == UNKNOWN {
                    let state = router.init_state(topo, cur, dst, &mut rng);
                    match router.next_edge(topo, cur, dst, state) {
                        Some(e) => {
                            stack.push((cur.index(), e.0));
                            cur = topo.edge_target(e);
                        }
                        None => {
                            // Dead end: a pair no real route visits (see
                            // `saturated_counts` on partial routers).
                            cells[cur.index() * nodes + di] = NO_EDGE;
                            break;
                        }
                    }
                }
                let mut hops = cells[cur.index() * nodes + di] >> 16;
                while let Some((c, e)) = stack.pop() {
                    hops += 1;
                    debug_assert!(hops <= 0xFFFF, "route longer than the 16-bit layout");
                    cells[c * nodes + di] = (hops << 16) | e;
                }
            }
        }
        for cell in &mut cells {
            if *cell == UNKNOWN {
                *cell = NO_EDGE;
            }
        }
        let edge_target = topo.edges().map(|e| topo.edge_target(e).0).collect();
        Self {
            nodes,
            cells,
            edge_target,
        }
    }

    /// Number of nodes the table covers.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Raw packed cell (next edge low, distance high).
    #[inline]
    fn cell(&self, cur: NodeId, dst: NodeId) -> u32 {
        self.cells[cur.index() * self.nodes + dst.index()]
    }

    /// The next edge a packet at `cur` headed for `dst` crosses.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `cur == dst` — arrival is checked
    /// before routing on the hot path.
    #[inline]
    #[must_use]
    pub fn next_edge(&self, cur: NodeId, dst: NodeId) -> EdgeId {
        let e = self.cell(cur, dst) & 0xFFFF;
        debug_assert_ne!(e, NO_EDGE, "no next edge: packet already at {dst}");
        EdgeId(e)
    }

    /// Route length in hops from `src` to `dst` (0 when equal).
    #[inline]
    #[must_use]
    pub fn dist(&self, src: NodeId, dst: NodeId) -> usize {
        (self.cell(src, dst) >> 16) as usize
    }

    /// Next edge and route length with a single table load — the
    /// injection fast path.
    #[inline]
    #[must_use]
    pub fn next_and_dist(&self, src: NodeId, dst: NodeId) -> (EdgeId, usize) {
        let cell = self.cell(src, dst);
        (EdgeId(cell & 0xFFFF), (cell >> 16) as usize)
    }

    /// The node `e` leads to.
    #[inline]
    #[must_use]
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        NodeId(self.edge_target[e.index()])
    }

    /// For every `(src, dst)` pair, the number of saturated edges
    /// (`sat_edge[edge] == true`) on the route — the per-packet `R_s`
    /// contribution of Table III, as one flat array read at injection.
    ///
    /// Computed by memoized route walking in `O(nodes²)` amortized: each
    /// cell's count is one edge indicator plus the already-known count at
    /// the next node.
    ///
    /// # Panics
    ///
    /// Panics if `sat_edge` is shorter than the edge count.
    #[must_use]
    pub fn saturated_counts(&self, sat_edge: &[bool]) -> Vec<u32> {
        let n = self.nodes;
        const UNKNOWN: u32 = u32::MAX;
        let mut counts = vec![UNKNOWN; n * n];
        for d in 0..n {
            counts[d * n + d] = 0;
        }
        let mut stack: Vec<usize> = Vec::new();
        for dst in 0..n {
            for src in 0..n {
                if counts[src * n + dst] != UNKNOWN {
                    continue;
                }
                let mut cur = src;
                while counts[cur * n + dst] == UNKNOWN {
                    let e = self.cells[cur * n + dst] & 0xFFFF;
                    if e == NO_EDGE {
                        // Dead end: an invalid destination, or a pair no
                        // real route visits (a partial router like the
                        // butterfly routes correctly only from cells
                        // reachable off level-0 sources). Terminal with
                        // count 0 — the simulator never queries such
                        // pairs, and reachable pairs never share a path
                        // with them.
                        counts[cur * n + dst] = 0;
                        break;
                    }
                    stack.push(cur);
                    cur = self.edge_target[e as usize] as usize;
                }
                let mut acc = counts[cur * n + dst];
                while let Some(c) = stack.pop() {
                    let e = (self.cells[c * n + dst] & 0xFFFF) as usize;
                    acc += u32::from(sat_edge[e]);
                    counts[c * n + dst] = acc;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ButterflyRouter, DimOrder, GreedyXY, KdGreedy, TorusGreedy};
    use meshbound_topology::{Butterfly, Hypercube, Mesh2D, MeshKD, Torus2D};

    /// Replays every pair through the table and the router side by side.
    fn check_agreement<T, R>(topo: &T, router: &R)
    where
        T: Topology,
        R: Router<T, State = ()>,
    {
        let table = RouteTable::build(topo, router);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                assert_eq!(
                    table.dist(src, dst),
                    router.route_len(topo, src, dst, ()),
                    "dist mismatch {src}->{dst}"
                );
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let e = table.next_edge(cur, dst);
                    assert_eq!(
                        Some(e),
                        router.next_edge(topo, cur, dst, ()),
                        "next-edge mismatch at {cur} headed {dst}"
                    );
                    assert_eq!(table.edge_target(e), topo.edge_target(e));
                    cur = table.edge_target(e);
                    hops += 1;
                    assert!(hops <= topo.num_edges(), "table cycled {src}->{dst}");
                }
                assert_eq!(hops, table.dist(src, dst));
            }
        }
    }

    #[test]
    fn tables_agree_with_routers_on_every_topology() {
        check_agreement(&Mesh2D::square(4), &GreedyXY);
        check_agreement(&Mesh2D::rect(3, 5), &GreedyXY);
        check_agreement(&Torus2D::new(5), &TorusGreedy);
        check_agreement(&Hypercube::new(4), &DimOrder);
        check_agreement(&MeshKD::new(&[3, 3, 3]), &KdGreedy);
    }

    #[test]
    fn butterfly_table_agrees_on_output_destinations() {
        let b = Butterfly::new(3);
        let table = RouteTable::build(&b, &ButterflyRouter);
        for s in 0..b.rows() {
            for o in 0..b.rows() {
                let (src, dst) = (b.node(0, s), b.node(3, o));
                assert_eq!(table.dist(src, dst), 3);
                let mut cur = src;
                while cur != dst {
                    let e = table.next_edge(cur, dst);
                    assert_eq!(Some(e), ButterflyRouter.next_edge(&b, cur, dst, ()));
                    cur = table.edge_target(e);
                }
            }
        }
        // Saturated counting copes with the invalid destination columns.
        let sat = vec![true; b.num_edges()];
        let counts = table.saturated_counts(&sat);
        assert_eq!(
            counts[b.node(0, 0).index() * b.num_nodes() + b.node(3, 1).index()],
            3
        );
    }

    #[test]
    fn saturated_counts_match_route_walks() {
        let mesh = Mesh2D::square(5);
        let table = RouteTable::build(&mesh, &GreedyXY);
        // Mark an arbitrary deterministic subset of edges saturated.
        let sat: Vec<bool> = (0..mesh.num_edges()).map(|e| e % 3 == 0).collect();
        let counts = table.saturated_counts(&sat);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let want: u32 = GreedyXY
                    .route(&mesh, src, dst, ())
                    .iter()
                    .map(|e| u32::from(sat[e.index()]))
                    .sum();
                assert_eq!(
                    counts[src.index() * mesh.num_nodes() + dst.index()],
                    want,
                    "{src}->{dst}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "deterministic router")]
    fn randomized_routers_are_rejected() {
        let mesh = Mesh2D::square(3);
        let _ = RouteTable::build(&mesh, &crate::RandomizedGreedy);
    }
}
