//! Conservation-law and measurement-consistency checks on the simulator:
//! Little's law, Theorem 6 rate verification, and the r/r_s accounting used
//! by Tables II and III.

use meshbound::queueing::remaining::{light_load_r, light_load_rs};
use meshbound::topology::Mesh2D;
use meshbound::{Load, Scenario};

fn base(n: usize, rho: f64, seed: u64) -> Scenario {
    Scenario::mesh(n)
        .load(Load::TableRho(rho))
        .horizon(20_000.0)
        .warmup(2_000.0)
        .seed(seed)
        .track_saturated(true)
}

#[test]
fn littles_law_delay_consistency() {
    let res = base(6, 0.6, 21).run();
    let rel = (res.avg_delay - res.little_delay).abs() / res.avg_delay;
    assert!(
        rel < 0.03,
        "delay {} vs Little {}",
        res.avg_delay,
        res.little_delay
    );
}

#[test]
fn empirical_edge_rates_match_theorem6() {
    let n = 5;
    let rho = 0.5;
    let cfg = base(n, rho, 23);
    let res = cfg.run();
    let mesh = Mesh2D::square(n);
    let expect = meshbound::routing::rates::mesh_thm6_rates(&mesh, cfg.lambda());
    use meshbound::topology::Topology;
    for e in mesh.edges() {
        let got = res.edge_throughput[e.index()];
        let want = expect[e.index()];
        assert!(
            (got - want).abs() < 0.07 * want.max(0.03),
            "edge {e}: {got} vs {want}"
        );
    }
}

#[test]
fn r_ratio_tracks_light_load_closed_form() {
    // At ρ = 0.2 Table II is within ~1% of the light-load closed form.
    for &n in &[5usize, 8] {
        let res = base(n, 0.2, 29).run();
        let expect = light_load_r(n);
        assert!(
            (res.r_ratio - expect).abs() / expect < 0.03,
            "n={n}: r {} vs closed form {expect}",
            res.r_ratio
        );
    }
}

#[test]
fn rs_ratio_tracks_light_load_closed_form() {
    for &n in &[5usize, 6] {
        let res = base(n, 0.2, 31).run();
        let expect = light_load_rs(&Mesh2D::square(n));
        assert!(
            (res.rs_ratio - expect).abs() / expect.max(0.1) < 0.08,
            "n={n}: r_s {} vs closed form {expect}",
            res.rs_ratio
        );
    }
}

#[test]
fn r_exceeds_rs_and_both_positive() {
    let res = base(7, 0.7, 37).run();
    assert!(res.r_ratio > res.rs_ratio);
    assert!(res.rs_ratio > 0.0);
    // r is at least 1: every in-flight packet needs ≥ 1 more service.
    assert!(res.r_ratio >= 1.0);
}

#[test]
fn throughput_matches_arrival_rate() {
    // Long-run completions per unit time ≈ λn² (all generated packets are
    // delivered in a stable system).
    let cfg = base(5, 0.5, 41);
    let res = cfg.run();
    let expect = cfg.lambda() * 25.0;
    let got = res.completed as f64 / res.measure_time;
    assert!(
        (got - expect).abs() / expect < 0.05,
        "throughput {got} vs λn² = {expect}"
    );
}

#[test]
fn peak_utilization_matches_load() {
    let res = base(6, 0.8, 43).run();
    assert!(
        (res.max_edge_utilization - 0.8).abs() < 0.06,
        "peak utilization {} vs ρ = 0.8",
        res.max_edge_utilization
    );
}

#[test]
fn middle_queues_are_larger() {
    // §4.4: "intuition suggests that the queues on the middle of the array
    // should have higher expected queue sizes, since the number of packets
    // passing through them is larger" — measured directly.
    let n = 8;
    let res = Scenario::mesh(n)
        .load(Load::TableRho(0.8))
        .horizon(20_000.0)
        .warmup(2_000.0)
        .seed(53)
        .track_edge_queues(true)
        .run();
    let q = res.edge_mean_queue.expect("tracking enabled");
    let mesh = Mesh2D::square(n);
    // Central right edge (crossing index n/2) vs peripheral right edge
    // (crossing index 1) in the same row.
    let central = mesh.right_edge(3, n / 2 - 1);
    let border = mesh.right_edge(3, 0);
    assert!(
        q[central.index()] > 3.0 * q[border.index()],
        "central {} vs border {}",
        q[central.index()],
        q[border.index()]
    );
    // And the central queue's mean exceeds even the M/D/1 prediction's
    // scale while staying near the M/M/1 one (sanity window).
    assert!(q[central.index()] > 1.0 && q[central.index()] < 10.0);
}

#[test]
fn edge_queue_sum_consistent_with_total_r() {
    // Every in-system packet sits in exactly one edge queue (waiting or in
    // service), so the per-edge mean queue lengths must sum to E[N].
    let res = Scenario::mesh(5)
        .load(Load::Lambda(0.3))
        .horizon(15_000.0)
        .warmup(1_500.0)
        .seed(59)
        .track_edge_queues(true)
        .run();
    let q = res.edge_mean_queue.expect("tracking enabled");
    let total: f64 = q.iter().sum();
    let rel = (total - res.time_avg_n).abs() / res.time_avg_n;
    assert!(
        rel < 0.02,
        "Σ edge queues {total} vs E[N] {}",
        res.time_avg_n
    );
}
