//! Aggregation of independent replication results into summary statistics.

use crate::ci::ConfidenceInterval;
use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// Summary of one scalar metric across independent replications.
///
/// Replications are fully independent simulation runs (different seeds), so
/// their per-run averages are i.i.d. and a Student-t interval applies
/// directly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    acc: Welford,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from a slice of per-replication values.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one replication's value.
    pub fn push(&mut self, value: f64) {
        self.acc.push(value);
    }

    /// Number of replications.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// Mean across replications.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// Sample standard deviation across replications.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.acc.sample_std_dev()
    }

    /// Minimum replication value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.acc.min()
    }

    /// Maximum replication value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.acc.max()
    }

    /// Student-t confidence interval at `level`.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let dof = self.acc.count().saturating_sub(1).max(1);
        ConfidenceInterval::from_standard_error(
            self.acc.mean(),
            self.acc.standard_error(),
            dof,
            level,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_matches_push() {
        let values = [1.0, 2.0, 3.0];
        let s = Summary::from_values(&values);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn interval_shrinks_with_replications() {
        let narrow = Summary::from_values(&[5.0; 2]);
        let mut many = Vec::new();
        for i in 0..40 {
            many.push(5.0 + if i % 2 == 0 { 0.1 } else { -0.1 });
        }
        let wide = Summary::from_values(&[4.9, 5.1]);
        let tight = Summary::from_values(&many);
        assert!(
            tight.confidence_interval(0.95).half_width < wide.confidence_interval(0.95).half_width
        );
        assert_eq!(narrow.confidence_interval(0.95).half_width, 0.0);
    }
}
