//! Routing algorithms and traffic characterization for `meshbound`.
//!
//! The paper's routing discipline is **greedy routing**: a packet first moves
//! along row edges to its destination column, then along column edges to its
//! destination row ([`GreedyXY`]). This crate also implements the variants
//! the paper discusses:
//!
//! * [`RandomizedGreedy`] — §6's randomized variant that flips a coin between
//!   row-first and column-first order;
//! * [`TorusGreedy`] — greedy routing with wraparound on the torus (§6);
//! * [`DimOrder`] — canonical dimension-order routing on the hypercube (§4.5);
//! * [`ButterflyRouter`] — the unique-path butterfly routing (§4.5);
//! * [`KdGreedy`] — axis-by-axis greedy routing on `k`-dimensional meshes
//!   (§5.2).
//!
//! Beyond the paper's oblivious schemes, the [`policy`] module defines the
//! per-hop [`RoutingPolicy`] API (every [`Router`] is one via a blanket
//! impl) under which [`WestFirst`] and [`OddEven`] implement turn-model
//! **adaptive** routing on the mesh and torus; their steady-state edge
//! rates come from the fixed-point solver
//! [`adaptive_edge_rates`] instead of path
//! enumeration.
//!
//! Destination distributions live in [`dest`]: uniform (the standard model),
//! the hypercube's Bernoulli-`p` distribution, and the §5.2 "nearby" walk
//! distribution. The [`lemma3`] module implements the Markov chain of
//! Lemma 3 that realizes the uniform destination distribution as a
//! memoryless stopping process, and [`rates`] computes exact per-edge
//! arrival rates (Theorem 6's closed form plus a path-enumeration method
//! that works for every oblivious router and destination distribution).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod butterfly;
pub mod dest;
pub mod greedy;
mod grid;
pub mod hypercube;
pub mod kd;
pub mod lemma3;
pub mod oddeven;
pub mod pattern;
pub mod policy;
pub mod randomized;
pub mod rates;
pub mod router;
pub mod table;
pub mod torus;
pub mod traffic;
pub mod westfirst;

pub use butterfly::ButterflyRouter;
pub use dest::{DestDist, DestSupport};
pub use greedy::GreedyXY;
pub use hypercube::DimOrder;
pub use kd::KdGreedy;
pub use oddeven::OddEven;
pub use pattern::{
    GenericDest, HotspotDest, MatrixDest, PatternTopology, PermutationDest, PermutationKind,
};
pub use policy::{policy_route, LocalView, RoutingPolicy, SplitRouting, ZeroView};
pub use randomized::{Order, RandomizedGreedy};
pub use router::{ObliviousRouter, RouteOutcome, Router};
pub use table::RouteTable;
pub use torus::TorusGreedy;
#[allow(deprecated)]
pub use traffic::traffic_fixed_point;
pub use traffic::{
    adaptive_edge_rates, try_traffic_fixed_point, MarkovRouting, TrafficConvergenceError,
};
pub use westfirst::WestFirst;
