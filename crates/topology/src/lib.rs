//! Directed-edge network topologies for greedy-routing analysis.
//!
//! This crate provides the graph substrate of the `meshbound` workspace: the
//! two-dimensional array network of Mitzenmacher's paper ([`Mesh2D`]), plus
//! every other topology the paper discusses — the linear array
//! ([`LinearArray`], Lemma 3), the torus ([`Torus2D`], §6), the hypercube and
//! butterfly ([`Hypercube`], [`Butterfly`], §4.5) and `k`-dimensional meshes
//! ([`MeshKD`], §5.2).
//!
//! All topologies use **directed** edges: each neighbouring pair of nodes is
//! joined by two edges, one per direction, exactly as in the paper's model
//! where each edge is an independent FIFO server. Nodes and edges are indexed
//! densely by [`NodeId`] and [`EdgeId`] so that simulators can use flat
//! arrays for per-edge state.
//!
//! The [`layering`] module implements the Lemma 2 edge labelling that makes
//! the array a layered network under greedy routing (the paper's Figure 1),
//! and [`render`] draws meshes with per-edge annotations for regenerating the
//! paper's figures in text form.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod butterfly;
pub mod hypercube;
pub mod ids;
pub mod layering;
pub mod linear;
pub mod mesh;
pub mod meshkd;
pub mod partition;
pub mod render;
pub mod torus;
pub mod traits;

pub use butterfly::Butterfly;
pub use hypercube::Hypercube;
pub use ids::{EdgeId, NodeId};
pub use layering::{check_layered, lemma2_label};
pub use linear::LinearArray;
pub use mesh::{Direction, Mesh2D};
pub use meshkd::MeshKD;
pub use partition::Partition;
pub use torus::Torus2D;
pub use traits::Topology;
