//! Lemma 3: a Markov chain on the linear array that delivers a packet to a
//! uniformly random position.
//!
//! The chain: a packet entering at node `k` (1-based) stays with probability
//! `1/n`; otherwise it moves left with probability `(k−1)/n` and right with
//! probability `(n−k)/n`. While moving left, a packet at node `j` stops with
//! probability `1/j` and continues left otherwise; symmetrically to the
//! right. Lemma 3 asserts each node is reached with probability exactly
//! `1/n`, which makes greedy routing with uniform destinations Markovian
//! (Corollary 4) — the key hypothesis of the Theorem 1 upper bound.

use meshbound_topology::{LinearArray, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// Phase of the Lemma 3 chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkState {
    /// Stopped at the current node (this is the destination).
    Stopped,
    /// Moving left; the stop decision at node `j` uses probability `1/j`.
    MovingLeft,
    /// Moving right; symmetric to [`WalkState::MovingLeft`].
    MovingRight,
}

/// The Lemma 3 Markov chain on a linear array of `n` elements.
#[derive(Debug, Clone, Copy)]
pub struct Lemma3Walk {
    n: usize,
}

impl Lemma3Walk {
    /// Creates the chain for a linear array of `n ≥ 1` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self { n }
    }

    /// Initial transition for a packet entering at 1-based node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=n`.
    pub fn enter(&self, k: usize, rng: &mut SmallRng) -> WalkState {
        assert!((1..=self.n).contains(&k));
        let u = rng.gen_range(0..self.n);
        if u == 0 {
            WalkState::Stopped
        } else if u < k {
            WalkState::MovingLeft
        } else {
            WalkState::MovingRight
        }
    }

    /// One step of the chain from 1-based node `j` in the given state;
    /// returns the new `(node, state)`.
    ///
    /// # Panics
    ///
    /// Panics if asked to step a stopped walk or to walk off the array.
    pub fn step(&self, j: usize, state: WalkState, rng: &mut SmallRng) -> (usize, WalkState) {
        match state {
            WalkState::Stopped => panic!("cannot step a stopped walk"),
            WalkState::MovingLeft => {
                let next = j - 1;
                assert!(next >= 1, "walked off the left end");
                // At node `next`, stop with probability 1/next.
                if rng.gen_range(0..next) == 0 {
                    (next, WalkState::Stopped)
                } else {
                    (next, WalkState::MovingLeft)
                }
            }
            WalkState::MovingRight => {
                let next = j + 1;
                assert!(next <= self.n, "walked off the right end");
                // Symmetric: stop with probability 1/(n−next+1).
                if rng.gen_range(0..self.n - next + 1) == 0 {
                    (next, WalkState::Stopped)
                } else {
                    (next, WalkState::MovingRight)
                }
            }
        }
    }

    /// Runs the chain to absorption and returns the final 1-based node.
    pub fn run(&self, k: usize, rng: &mut SmallRng) -> usize {
        let mut state = self.enter(k, rng);
        let mut node = k;
        while state != WalkState::Stopped {
            let (next, s) = self.step(node, state, rng);
            node = next;
            state = s;
        }
        node
    }

    /// Runs the chain returning the node as a [`NodeId`] of `array`
    /// (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `array` has a different length than the chain.
    pub fn run_on(&self, array: &LinearArray, src: NodeId, rng: &mut SmallRng) -> NodeId {
        assert_eq!(array.len(), self.n);
        NodeId((self.run(src.index() + 1, rng) - 1) as u32)
    }

    /// Exact absorption distribution from entry node `k`, computed by
    /// dynamic programming (used in tests to verify Lemma 3 analytically).
    #[must_use]
    pub fn exact_distribution(&self, k: usize) -> Vec<f64> {
        let n = self.n;
        let mut dist = vec![0.0; n + 1]; // 1-based
        dist[k] += 1.0 / n as f64;
        // Moving left: reach node j < k having not stopped in (j, k), then
        // stop at j with probability 1/j.
        let mut p_moving = (k - 1) as f64 / n as f64;
        for j in (1..k).rev() {
            let stop = 1.0 / j as f64;
            dist[j] += p_moving * stop;
            p_moving *= 1.0 - stop;
        }
        // Moving right.
        let mut p_moving = (n - k) as f64 / n as f64;
        #[allow(clippy::needless_range_loop)]
        for j in k + 1..=n {
            let stop = 1.0 / (n - j + 1) as f64;
            dist[j] += p_moving * stop;
            p_moving *= 1.0 - stop;
        }
        dist.remove(0);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn exact_distribution_is_uniform() {
        // This *is* Lemma 3, verified by exact computation for many n and k.
        for n in 1..=12 {
            let walk = Lemma3Walk::new(n);
            for k in 1..=n {
                let dist = walk.exact_distribution(k);
                for (j, &p) in dist.iter().enumerate() {
                    assert!(
                        (p - 1.0 / n as f64).abs() < 1e-12,
                        "n={n}, k={k}, j={}: p={p}",
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_agrees_with_lemma() {
        let n = 7;
        let walk = Lemma3Walk::new(n);
        let mut rng = SmallRng::seed_from_u64(1234);
        let trials = 140_000;
        let mut counts = vec![0u32; n];
        for _ in 0..trials {
            counts[walk.run(3, &mut rng) - 1] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / trials as f64;
            assert!((freq - 1.0 / n as f64).abs() < 0.005, "freq {freq}");
        }
    }

    #[test]
    fn run_on_linear_array() {
        let arr = LinearArray::new(5);
        let walk = Lemma3Walk::new(5);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let d = walk.run_on(&arr, NodeId(2), &mut rng);
            assert!(d.index() < 5);
        }
    }

    proptest! {
        #[test]
        fn prop_exact_distribution_sums_to_one(n in 1usize..20, k in 1usize..20) {
            let k = (k % n) + 1;
            let walk = Lemma3Walk::new(n);
            let total: f64 = walk.exact_distribution(k).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
