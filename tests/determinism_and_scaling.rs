//! Reproducibility and structural-scaling properties of the full stack.

use meshbound::{BoundsReport, Load, Scenario};

#[test]
fn identical_seeds_identical_results() {
    let sc = Scenario::mesh(6)
        .load(Load::Lambda(0.3))
        .horizon(3_000.0)
        .warmup(300.0)
        .seed(0xDEAD_BEEF)
        .track_saturated(true);
    let a = sc.run();
    let b = sc.run();
    assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.time_avg_r.to_bits(), b.time_avg_r.to_bits());
}

#[test]
fn replication_interval_covers_single_runs() {
    let rep = Scenario::mesh(5)
        .load(Load::Lambda(0.3))
        .horizon(4_000.0)
        .warmup(400.0)
        .seed(7)
        .track_saturated(true)
        .run_replicated(6);
    let ci = rep.delay.confidence_interval(0.99);
    // Every individual run should be near the interval (loose sanity).
    for run in &rep.runs {
        assert!(
            (run.avg_delay - ci.mean).abs() < 10.0 * ci.half_width.max(0.05),
            "run {} far from {ci:?}",
            run.avg_delay
        );
    }
}

#[test]
fn delay_scales_linearly_in_n_at_fixed_rho() {
    // n̄ = (2/3)(n − 1/n): doubling n roughly doubles light-load delay.
    let run = |n: usize| {
        Scenario::mesh(n)
            .load(Load::TableRho(0.2))
            .horizon(6_000.0)
            .warmup(600.0)
            .seed(3)
            .run()
            .avg_delay
    };
    let t6 = run(6);
    let t12 = run(12);
    let ratio = t12 / t6;
    assert!((ratio - 2.0).abs() < 0.25, "t12/t6 = {ratio} should be ≈ 2");
}

#[test]
fn kahale_leighton_shape_at_fixed_rho() {
    // §4.2 cites Kahale–Leighton: at fixed ρ, T − n̄ stays bounded by a
    // constant (while the independence estimate grows linearly in n).
    // Check the simulated excess delay grows much slower than the estimate's.
    let excess = |n: usize| {
        let rho = 0.8;
        let report = BoundsReport::compute(n, Load::TableRho(rho));
        let t = Scenario::mesh(n)
            .load(Load::TableRho(rho))
            .horizon(20_000.0)
            .warmup(2_000.0)
            .seed(5)
            .run()
            .avg_delay;
        (
            t - report.mean_distance,
            report.est_md1 - report.mean_distance,
        )
    };
    let (sim_small, est_small) = excess(8);
    let (sim_big, est_big) = excess(16);
    let sim_growth = sim_big / sim_small;
    let est_growth = est_big / est_small;
    assert!(
        sim_growth < est_growth,
        "simulated excess growth {sim_growth} should lag estimate growth {est_growth}"
    );
}
